package log

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a clock stepping one second per call from a fixed
// origin, so emitted timestamps are deterministic.
func fixedClock() func() time.Time {
	t := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Second)
		return t
	}
}

func TestDeterministicOutput(t *testing.T) {
	emit := func() string {
		var buf bytes.Buffer
		lg := New(&buf, Options{Level: LevelDebug, Clock: fixedClock()})
		child := lg.With(F("job", "job-000001"), F("kind", "solve"))
		child.Info("job accepted", F("queue_depth", 3))
		child.Debug("tick", F("done", 1), F("planned", 9))
		lg.Warn("queue full", F("retry_after", 2))
		lg.Error("job failed", F("error", "boom"))
		return buf.String()
	}
	a, b := emit(), emit()
	if a != b {
		t.Fatalf("two identical call sequences differ:\n%s\n---\n%s", a, b)
	}
	want := `{"ts":"2026-01-02T03:04:06Z","level":"info","msg":"job accepted","job":"job-000001","kind":"solve","queue_depth":3}
{"ts":"2026-01-02T03:04:07Z","level":"debug","msg":"tick","job":"job-000001","kind":"solve","done":1,"planned":9}
{"ts":"2026-01-02T03:04:08Z","level":"warn","msg":"queue full","retry_after":2}
{"ts":"2026-01-02T03:04:09Z","level":"error","msg":"job failed","error":"boom"}
`
	if a != want {
		t.Errorf("output:\n%s\nwant:\n%s", a, want)
	}
}

func TestEveryLineIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, Options{Level: LevelDebug})
	lg.Info(`msg with "quotes" and
newline`, F(`key"with"quotes`, "v"), F("num", 1.5), F("bool", true), F("null", nil))
	lg.Info("unmarshalable", F("ch", make(chan int)))
	for i, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("line %d not valid JSON: %v\n%s", i, err, line)
		}
	}
	// The channel field degraded to its %v string instead of being lost.
	if !strings.Contains(buf.String(), `"ch":"0x`) {
		t.Errorf("unmarshalable value not degraded to a string: %s", buf.String())
	}
}

func TestLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, Options{Level: LevelWarn})
	lg.Debug("d")
	lg.Info("i")
	lg.Warn("w")
	lg.Error("e")
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Errorf("got %d lines at level warn, want 2:\n%s", lines, buf.String())
	}
	if lg.Enabled(LevelInfo) || !lg.Enabled(LevelWarn) {
		t.Error("Enabled disagrees with the configured level")
	}
}

func TestNilLoggerIsNoOp(t *testing.T) {
	var lg *Logger
	child := lg.With(F("k", "v")) // must not panic, stays nil
	if child != nil {
		t.Error("With on nil logger returned non-nil")
	}
	child.Debug("d")
	child.Info("i")
	child.Warn("w")
	child.Error("e")
	if lg.Enabled(LevelError) {
		t.Error("nil logger claims to be enabled")
	}
	if New(nil, Options{}) != nil {
		t.Error("New(nil, ...) returned a logger with no sink")
	}
}

func TestWithDoesNotMutateParent(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, Options{}).With(F("a", 1))
	c1 := lg.With(F("b", 2))
	c2 := lg.With(F("c", 3))
	c1.Info("one")
	c2.Info("two")
	lg.Info("parent")
	out := buf.String()
	if !strings.Contains(out, `"msg":"one","a":1,"b":2}`) ||
		!strings.Contains(out, `"msg":"two","a":1,"c":3}`) {
		t.Errorf("sibling children shared bound fields:\n%s", out)
	}
	if !strings.Contains(out, `"msg":"parent","a":1}`) {
		t.Errorf("parent gained a child's fields:\n%s", out)
	}
	if lg.With() != lg {
		t.Error("With() with no fields should return the receiver")
	}
}

func TestParseLevel(t *testing.T) {
	for name, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(name)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
	if s := Level(9).String(); s != "level(9)" {
		t.Errorf("out-of-range level string %q", s)
	}
}

func TestConcurrentEmitKeepsLinesWhole(t *testing.T) {
	var buf bytes.Buffer
	lg := New(&buf, Options{Level: LevelDebug})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			child := lg.With(F("g", g))
			for i := 0; i < 50; i++ {
				child.Info("line", F("i", i))
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*50 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*50)
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}

func TestDefault(t *testing.T) {
	if Default() != nil {
		t.Fatal("default logger unexpectedly set")
	}
	lg := New(&bytes.Buffer{}, Options{})
	SetDefault(lg)
	defer SetDefault(nil)
	if Default() != lg {
		t.Error("SetDefault/Default round trip failed")
	}
}

// Package log is the zero-dependency structured logging layer of the
// CDSF reproduction, in the house style of internal/metrics: leveled
// JSON-lines output with deterministic field ordering, a nil-receiver
// no-op fast path, and an injectable clock so seeded log output is
// bit-identical run to run.
//
// Every record is one JSON object on one line. Fields are emitted in a
// fixed order — ts, level, msg, then the logger's bound fields (in
// binding order), then the call's fields (in argument order) — by a
// hand-rolled encoder, because encoding/json would sort map keys and
// lose the ordering contract. With a fixed clock, two identical call
// sequences produce byte-identical output.
//
//	lg := log.New(w, log.Options{Level: log.LevelInfo})
//	jl := lg.With(log.F("job", id))      // child logger, bound fields
//	jl.Info("job started", log.F("kind", "solve"))
//
// A nil *Logger is a no-op on every method (including With, which
// returns nil), so instrumented code holds plain pointers and pays one
// predictable nil check when logging is disabled — the same disabled
// path as a nil metrics.Registry. Logging never draws from the
// simulation rng streams and writes only to its own sink, so seeded
// result documents and CLI stdout are byte-identical with logging on
// or off.
//
// Only the standard library is used.
package log

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. The zero value is LevelInfo, so a zero
// Options logs info and above.
type Level int32

const (
	// LevelDebug: per-request and per-tick detail.
	LevelDebug Level = iota - 1
	// LevelInfo: lifecycle transitions worth keeping.
	LevelInfo
	// LevelWarn: degraded but continuing.
	LevelWarn
	// LevelError: a run or request failed.
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel parses a level name as the CLIs' -log-level flag accepts
// it: debug, info, warn (or warning), error.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("log: unknown level %q (have debug, info, warn, error)", s)
}

// Field is one key/value pair of a record. Construct fields with F.
type Field struct {
	Key   string
	Value any
}

// F builds a Field; it exists so call sites read as
// log.F("job", id) rather than a struct literal.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Options configures a Logger.
type Options struct {
	// Level is the minimum severity emitted; records below it are
	// dropped before any encoding work. The zero value is LevelInfo.
	Level Level
	// Clock supplies record timestamps; nil means time.Now. Tests and
	// determinism pins inject a fixed clock so output is bit-identical.
	Clock func() time.Time
}

// Logger emits JSON-lines records to a shared sink. Child loggers made
// with With share the parent's sink, level, and clock; writes are
// serialized by one mutex per sink, so one line is never interleaved
// with another. The zero value is not useful — construct with New.
type Logger struct {
	core   *core
	fields []Field // bound fields, emitted after ts/level/msg
}

// core is the sink state shared by a logger and all its children.
type core struct {
	mu    sync.Mutex
	w     io.Writer
	level Level
	clock func() time.Time
}

// New returns a logger writing JSON lines to w. A nil w returns a nil
// logger (the no-op path), so callers can pass an optional sink
// straight through.
func New(w io.Writer, opts Options) *Logger {
	if w == nil {
		return nil
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Logger{core: &core{w: w, level: opts.Level, clock: clock}}
}

// With returns a child logger whose records carry the given fields
// after the parent's bound fields. A nil receiver returns nil, keeping
// the whole chain a no-op.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil {
		return nil
	}
	if len(fields) == 0 {
		return l
	}
	bound := make([]Field, 0, len(l.fields)+len(fields))
	bound = append(bound, l.fields...)
	bound = append(bound, fields...)
	return &Logger{core: l.core, fields: bound}
}

// Enabled reports whether records at the given level would be emitted
// (false on a nil receiver), so callers can skip expensive field
// construction.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.core.level
}

// Debug emits a debug record. No-op on a nil receiver.
func (l *Logger) Debug(msg string, fields ...Field) { l.emit(LevelDebug, msg, fields) }

// Info emits an info record. No-op on a nil receiver.
func (l *Logger) Info(msg string, fields ...Field) { l.emit(LevelInfo, msg, fields) }

// Warn emits a warn record. No-op on a nil receiver.
func (l *Logger) Warn(msg string, fields ...Field) { l.emit(LevelWarn, msg, fields) }

// Error emits an error record. No-op on a nil receiver.
func (l *Logger) Error(msg string, fields ...Field) { l.emit(LevelError, msg, fields) }

// emit encodes and writes one record: one buffered line, one Write
// call, under the sink mutex.
func (l *Logger) emit(level Level, msg string, fields []Field) {
	if !l.Enabled(level) {
		return
	}
	var buf bytes.Buffer
	buf.WriteString(`{"ts":`)
	appendValue(&buf, l.core.clock().UTC().Format(time.RFC3339Nano))
	buf.WriteString(`,"level":`)
	appendValue(&buf, level.String())
	buf.WriteString(`,"msg":`)
	appendValue(&buf, msg)
	for _, f := range l.fields {
		appendField(&buf, f)
	}
	for _, f := range fields {
		appendField(&buf, f)
	}
	buf.WriteString("}\n")

	l.core.mu.Lock()
	defer l.core.mu.Unlock()
	_, _ = l.core.w.Write(buf.Bytes())
}

// appendField writes `,"key":value` with the key JSON-escaped.
func appendField(buf *bytes.Buffer, f Field) {
	buf.WriteByte(',')
	appendValue(buf, f.Key)
	buf.WriteByte(':')
	appendValue(buf, f.Value)
}

// appendValue writes one JSON value. Values that fail to marshal
// (channels, cyclic structures) degrade to their quoted %v rendering
// instead of poisoning the whole line.
func appendValue(buf *bytes.Buffer, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		raw, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	// json.Marshal never emits newlines, so the one-record-per-line
	// invariant holds without scanning.
	buf.Write(raw)
}

// defaultLogger is the process-wide fallback logger; see SetDefault.
var defaultLogger atomic.Pointer[Logger]

// SetDefault installs l as the process-wide default logger, the
// fallback instrumented code uses when no logger was wired through its
// config — the same pattern as metrics.SetDefault. The CLIs call it
// once at startup when -log is given; passing nil disables the
// fallback. Libraries and tests should prefer explicit wiring.
func SetDefault(l *Logger) { defaultLogger.Store(l) }

// Default returns the logger installed by SetDefault, or nil.
func Default() *Logger { return defaultLogger.Load() }

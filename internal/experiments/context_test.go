package experiments

import (
	"context"
	"errors"
	"testing"
)

// Every ctx-aware generator must refuse a pre-cancelled context.
func TestGeneratorsRefuseCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeTableIVContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("ComputeTableIVContext: err = %v", err)
	}
	if _, err := RunPaperScenarioContext(ctx, 1, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("RunPaperScenarioContext: err = %v", err)
	}
	if _, err := GenerateFigureContext(ctx, 3, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("GenerateFigureContext: err = %v", err)
	}
	if _, _, err := GenerateTableVIContext(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("GenerateTableVIContext: err = %v", err)
	}
}

// A cancelled scale study reports the cancellation, both on the
// sequential and the parallel path.
func TestRunScaleStudyContextCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		cfg := DefaultScaleConfig(1)
		cfg.Workers = workers
		if _, err := RunScaleStudyContext(ctx, cfg); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

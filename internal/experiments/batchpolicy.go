package experiments

import (
	"context"
	"fmt"

	"cdsf/internal/batch"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/stats"
)

// GenerateBatchPolicyStudy compares the resource manager's batching
// policies on the paper's application mix: greedy (schedule whatever is
// queued), size-thresholded, and time-windowed grouping. Bigger batches
// give the Stage-I heuristic more freedom (higher per-batch phi_1) at
// the price of queueing delay — the operational trade the paper's
// batch-arrival narrative implies but does not quantify.
func GenerateBatchPolicyStudy(seed uint64, jobs int) (*report.Table, error) {
	if jobs <= 0 {
		return nil, fmt.Errorf("experiments: %d jobs", jobs)
	}
	policies := []struct {
		name string
		p    batch.Policy
	}{
		{"greedy", batch.GreedyPolicy{}},
		{"size(3)", batch.SizePolicy{Min: 3}},
		{"window(1500)", &batch.WindowPolicy{Window: 1500}},
	}
	t := report.NewTable(
		fmt.Sprintf("Batching-policy study: %d paper-mix arrivals, mean interarrival 900", jobs),
		"Policy", "Batches", "Mean batch size", "Mean wait", "Mean phi1 (%)", "Deadline rate (%)")
	for _, pol := range policies {
		res, err := batch.RunContext(context.Background(), batch.Config{
			Sys: ReferenceSystem(),
			Arrivals: batch.ArrivalProcess{
				Interarrival: stats.NewExponential(1.0 / 900),
				Templates:    PaperBatch(100),
			},
			Heuristic: ra.Greedy{},
			Deadline:  Deadline,
			MaxBatch:  4,
			Jobs:      jobs,
			Policy:    pol.p,
			Seed:      seed,
		})
		if err != nil {
			return nil, err
		}
		sumPhi := 0.0
		for _, b := range res.Batches {
			sumPhi += b.Phi1
		}
		t.AddRow(pol.name,
			fmt.Sprintf("%d", len(res.Batches)),
			fmt.Sprintf("%.2f", res.MeanBatchSize),
			fmt.Sprintf("%.0f", res.MeanWait),
			fmt.Sprintf("%.1f", sumPhi/float64(len(res.Batches))*100),
			fmt.Sprintf("%.0f", res.DeadlineRate*100))
	}
	return t, nil
}

package experiments

import (
	"testing"
)

func TestCorrelationStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	tbl, err := GenerateCorrelationStudy(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	static := rowFloats(t, out, "STATIC")
	af := rowFloats(t, out, "AF ")
	if len(static) < 3 || len(af) < 3 {
		t.Fatalf("missing cells:\n%s", out)
	}
	// Makespans grow with correlation: a fully correlated slowdown
	// cannot be rebalanced away.
	if af[len(af)-1] <= af[0] {
		t.Errorf("AF makespan did not grow with correlation: %v", af)
	}
	if static[len(static)-1] <= static[0] {
		t.Errorf("STATIC makespan did not grow with correlation: %v", static)
	}
	// The adaptive advantage narrows in relative terms.
	gap0 := static[0] / af[0]
	gap1 := static[len(static)-1] / af[len(af)-1]
	if gap1 >= gap0 {
		t.Errorf("adaptive advantage did not shrink: %v -> %v", gap0, gap1)
	}
}

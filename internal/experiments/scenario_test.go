package experiments

import (
	"context"
	"math"
	"testing"

	"cdsf/internal/availability"
	"cdsf/internal/core"
	"cdsf/internal/dls"
	"cdsf/internal/robustness"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
)

// TestPaperRobustnessTuple verifies the headline result of the paper's
// scenario 4: system robustness (rho1, rho2) = (74.5%, 30.77%). Our
// Table I PMFs give a case-3 decrease of 30.89% (the paper's printed
// 30.77% is inconsistent with its own printed PMFs by ~0.1 pp), so the
// tolerance reflects that.
func TestPaperRobustnessTuple(t *testing.T) {
	if testing.Short() {
		t.Skip("stage-II simulation is slow")
	}
	res, err := RunPaperScenario(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	tuple := core.SystemRobustness(res)
	if math.Abs(tuple.Rho1-0.745) > 0.01 {
		t.Errorf("rho1 = %v, want ~0.745", tuple.Rho1)
	}
	if math.Abs(tuple.Rho2-0.3077) > 0.005 {
		t.Errorf("rho2 = %v, want ~0.3077", tuple.Rho2)
	}
}

// TestPaperScenario4Shape verifies the qualitative Table VI / Figure 6
// claims: all applications meet the deadline in cases 1-3; in case 4
// application 2 fails under every technique while applications 1 and 3
// still meet it, with AF the best technique for application 3.
func TestPaperScenario4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("stage-II simulation is slow")
	}
	res, err := RunPaperScenario(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	for ci := 0; ci < 3; ci++ {
		if !res.Cases[ci].AllMeet {
			t.Errorf("%s: not all applications meet the deadline", res.Cases[ci].Case.Name)
		}
	}
	c4 := res.Cases[3]
	if c4.AllMeet {
		t.Error("case 4 unexpectedly robust")
	}
	if c4.Best[0] == "" {
		t.Error("case 4: application 1 should meet the deadline")
	}
	if c4.Best[1] != "" {
		t.Errorf("case 4: application 2 met the deadline with %s", c4.Best[1])
	}
	if c4.Best[2] == "" {
		t.Error("case 4: application 3 should meet the deadline")
	}
	afMeets := false
	for _, o := range c4.PerApp[2] {
		if o.Technique == "AF" && o.Meets {
			afMeets = true
		}
	}
	if !afMeets {
		t.Error("case 4: AF should meet the deadline for application 3")
	}
}

// TestPaperScenario1Fails verifies the scenario-1 claim: naive IM plus
// STATIC violates the deadline in every availability case.
func TestPaperScenario1Fails(t *testing.T) {
	if testing.Short() {
		t.Skip("stage-II simulation is slow")
	}
	res, err := RunPaperScenario(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.StageI.Phi1-0.26) > 0.01 {
		t.Errorf("scenario 1 phi1 = %v, want ~0.26", res.StageI.Phi1)
	}
	for _, c := range res.Cases {
		if c.AllMeet {
			t.Errorf("scenario 1 %s: unexpectedly met the deadline", c.Case.Name)
		}
	}
}

// TestPaperScenario2Fails verifies the scenario-2 claim: even with the
// robust allocation, STATIC scheduling violates the deadline in every
// case at runtime.
func TestPaperScenario2Fails(t *testing.T) {
	if testing.Short() {
		t.Skip("stage-II simulation is slow")
	}
	res, err := RunPaperScenario(2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.StageI.Phi1-0.745) > 0.01 {
		t.Errorf("scenario 2 phi1 = %v, want ~0.745", res.StageI.Phi1)
	}
	for _, c := range res.Cases {
		if c.AllMeet {
			t.Errorf("scenario 2 %s: unexpectedly met the deadline", c.Case.Name)
		}
	}
}

// TestPaperScenario3NotRobust verifies the scenario-3 claim: robust DLS
// cannot compensate for the naive allocation — the batch misses the
// deadline in cases 2-4 (the paper additionally reports a violation in
// case 1 for application 3, which sits exactly on the deadline boundary
// in our simulator, so case 1 is not asserted).
func TestPaperScenario3NotRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("stage-II simulation is slow")
	}
	res, err := RunPaperScenario(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cases[1:] {
		if c.AllMeet {
			t.Errorf("scenario 3 %s: unexpectedly met the deadline", c.Case.Name)
		}
	}
}

// TestGenerateEverything smoke-tests every table and figure generator.
func TestGenerateEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("stage-II simulation is slow")
	}
	if s := GenerateTableI().String(); len(s) == 0 {
		t.Error("Table I empty")
	}
	if s := GenerateTableII().String(); len(s) == 0 {
		t.Error("Table II empty")
	}
	if s := GenerateTableIII().String(); len(s) == 0 {
		t.Error("Table III empty")
	}
	t4, err := GenerateTableIV()
	if err != nil || len(t4.String()) == 0 {
		t.Errorf("Table IV: %v", err)
	}
	t5, err := GenerateTableV()
	if err != nil || len(t5.String()) == 0 {
		t.Errorf("Table V: %v", err)
	}
	for n := 3; n <= 6; n++ {
		c, err := GenerateFigure(n, 42)
		if err != nil || len(c.String()) == 0 {
			t.Errorf("Figure %d: %v", n, err)
		}
	}
	t6, tuple, err := GenerateTableVI(42)
	if err != nil || len(t6.String()) == 0 {
		t.Errorf("Table VI: %v", err)
	}
	if tuple.Rho1 <= 0 {
		t.Errorf("tuple = %v", tuple)
	}
	if _, err := GenerateFigure(7, 1); err == nil {
		t.Error("figure 7 accepted")
	}
	if _, err := RunPaperScenario(0, 1); err == nil {
		t.Error("scenario 0 accepted")
	}
}

// TestValidateSimulatorAgainstStageI cross-validates the discrete-event
// simulator against the paper's analytic Stage-I model on the robust
// allocation: under Stage-I-compatible conditions the simulated
// makespan distribution must be statistically indistinguishable from
// the analytic completion PMF (see core.ValidateStageI).
func TestValidateSimulatorAgainstStageI(t *testing.T) {
	if testing.Short() {
		t.Skip("validation is slow")
	}
	f := Framework()
	alloc := PaperRobustAllocation()
	for i := range f.Batch {
		v, err := f.ValidateStageI(alloc, i, 300, 7)
		if err != nil {
			t.Fatal(err)
		}
		if v.MeanRelativeError() > 0.03 {
			t.Errorf("%s: sim mean %v vs analytic %v", v.App, v.SimMean, v.AnalyticMean)
		}
		if v.KS > 2*v.Critical {
			t.Errorf("%s: KS %v far above critical %v", v.App, v.KS, v.Critical)
		}
		t.Logf("%s: analytic %.1f sim %.1f KS %.3f (crit %.3f)",
			v.App, v.AnalyticMean, v.SimMean, v.KS, v.Critical)
	}
}

// TestStaticRuntimeModelMatchesSimulator cross-validates the analytic
// max-over-draws STATIC model (robustness.StaticRuntimePMF) against the
// discrete-event simulator under matching conditions: per-worker static
// availability draws, run-level work draw, no overhead.
func TestStaticRuntimeModelMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("validation is slow")
	}
	f := Framework()
	app := &f.Batch[2] // App 3 on 8 processors of type 2
	avail := f.Sys.Types[1].Avail
	analytic := robustness.StaticRuntimePMF(app, 1, 8, avail, 400)

	static, _ := dls.Get("STATIC")
	iterMean := app.ExecTime[1].Mean() / float64(app.TotalIters())
	s, err := sim.RunManyContext(context.Background(), sim.Config{
		SerialIters:   app.SerialIters,
		ParallelIters: app.ParallelIters,
		Workers:       8,
		IterTime:      stats.NewNormal(iterMean, 0.1*iterMean),
		Avail:         availability.Static{PMF: avail},
		Technique:     static,
		Overhead:      0,
		Seed:          3,
	}, 400)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(s.Mean()-analytic.Mean()) / analytic.Mean()
	t.Logf("analytic STATIC %.0f, simulated %.0f (%.1f%% apart)",
		analytic.Mean(), s.Mean(), rel*100)
	if rel > 0.10 {
		t.Errorf("analytic %v vs simulated %v differ by %.1f%%",
			analytic.Mean(), s.Mean(), rel*100)
	}
}

// TestSimulatedToleranceEdge locates the continuous version of rho_2:
// the exact uniform weighted-availability decrease at which the robust
// allocation stops meeting the deadline under the robust technique set.
// The paper's discrete cases bound it between 30.77% (met) and 32.77%
// (violated); the bisected edge must land in a neighborhood of that
// bracket.
func TestSimulatedToleranceEdge(t *testing.T) {
	if testing.Short() {
		t.Skip("tolerance bisection is slow")
	}
	f := Framework()
	cfg := core.DefaultStageII(Deadline, 42)
	cfg.Reps = 30
	res, err := f.SimTolerance(PaperRobustAllocation(), core.RobustRAS(), cfg, 0.3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("continuous rho2 = %.1f%% decrease (techniques %v)", res.Decrease*100, res.Technique)
	if res.Decrease < 0.15 || res.Decrease > 0.5 {
		t.Errorf("tolerance %.1f%% far outside the paper's bracket", res.Decrease*100)
	}
}

package experiments

import (
	"context"
	"fmt"

	"cdsf/internal/availability"
	"cdsf/internal/core"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/rng"
	"cdsf/internal/robustness"
	"cdsf/internal/sysmodel"
	"cdsf/internal/tracing"
)

// This file adds the precedence axis to the synthetic studies: the
// paper evaluates independent batches only, but scientific workloads
// chain applications (pre-processing -> solves -> reduction). The DAG
// study compares Stage-I heuristics across canonical topologies —
// chain, fork-join, and layered random DAGs of increasing edge density
// — on the DAG phi_1 (completion PMFs composed along the edges) and on
// the Stage-II outcome with per-replication release gating.

// ChainEdges returns the linear pipeline 0 -> 1 -> ... -> n-1.
func ChainEdges(n int) []sysmodel.Edge {
	if n < 2 {
		return nil
	}
	out := make([]sysmodel.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		out = append(out, sysmodel.Edge{From: i, To: i + 1})
	}
	return out
}

// ForkJoinEdges returns the fork-join topology: application 0 fans out
// to 1..n-2, which all join into n-1. n < 3 degenerates to ChainEdges.
func ForkJoinEdges(n int) []sysmodel.Edge {
	if n < 3 {
		return ChainEdges(n)
	}
	out := make([]sysmodel.Edge, 0, 2*(n-2))
	for i := 1; i <= n-2; i++ {
		out = append(out, sysmodel.Edge{From: 0, To: i})
	}
	for i := 1; i <= n-2; i++ {
		out = append(out, sysmodel.Edge{From: i, To: n - 1})
	}
	return out
}

// LayeredEdges returns a seeded random layered DAG: the n applications
// are split into `layers` consecutive layers of (near) equal size, and
// each (u, v) pair in adjacent layers is connected with probability
// `density`. Every non-first-layer application keeps at least one
// predecessor (the smallest-index application of the previous layer)
// so no layer short-circuits the precedence depth. The result is
// acyclic by construction and deterministic in the seed.
func LayeredEdges(seed uint64, n, layers int, density float64) []sysmodel.Edge {
	if layers < 2 || n < 2 {
		return nil
	}
	if layers > n {
		layers = n
	}
	r := rng.New(seed)
	// Layer l holds applications [bounds[l], bounds[l+1]).
	bounds := make([]int, layers+1)
	for l := 0; l <= layers; l++ {
		bounds[l] = l * n / layers
	}
	var out []sysmodel.Edge
	for l := 0; l+1 < layers; l++ {
		for v := bounds[l+1]; v < bounds[l+2]; v++ {
			linked := false
			for u := bounds[l]; u < bounds[l+1]; u++ {
				if r.Float64() < density {
					out = append(out, sysmodel.Edge{From: u, To: v})
					linked = true
				}
			}
			if !linked {
				out = append(out, sysmodel.Edge{From: bounds[l], To: v})
			}
		}
	}
	return out
}

// DAGStudyConfig parameterizes RunDAGStudy.
type DAGStudyConfig struct {
	// Apps, Type1, Type2 size the synthetic instance (SyntheticInstance).
	Apps, Type1, Type2 int
	// Slack calibrates deadline tightness against the edge-free best
	// allocation; DAG topologies then tighten the effective deadline by
	// serializing chains.
	Slack float64
	// Layers and Density shape the layered random topology.
	Layers  int
	Density float64
	// Heuristics names the Stage-I policies to compare (ra.ByName).
	Heuristics []string
	// Reps is the number of Stage-II repetitions per cell.
	Reps int
	// Scale degrades the runtime availability relative to Stage I's
	// expectation.
	Scale float64
	// Seed drives instance generation, topology sampling, and
	// simulations.
	Seed uint64
	// Backend selects the Stage-I PMF representation.
	Backend pmf.Backend
	// Workers bounds the pool evaluating (topology, heuristic) cells
	// concurrently; the output is identical for any count.
	Workers int
}

// DefaultDAGStudyConfig returns the configuration used by expgen -dag.
func DefaultDAGStudyConfig(seed uint64) DAGStudyConfig {
	return DAGStudyConfig{
		Apps: 6, Type1: 8, Type2: 16,
		Slack:      2.5,
		Layers:     3,
		Density:    0.5,
		Heuristics: []string{"greedy", "twophase", "heft", "dag-greedy"},
		Reps:       10,
		Scale:      0.9,
		Seed:       seed,
	}
}

// dagTopology is one named edge set of the study.
type dagTopology struct {
	name  string
	edges []sysmodel.Edge
}

// studyTopologies materializes the study's axis for n applications.
func studyTopologies(cfg DAGStudyConfig) []dagTopology {
	n := cfg.Apps
	return []dagTopology{
		{"independent", nil},
		{"chain", ChainEdges(n)},
		{"fork-join", ForkJoinEdges(n)},
		{fmt.Sprintf("layered (d=%.1f)", cfg.Density), LayeredEdges(cfg.Seed^0x9e3779b97f4a7c15, n, cfg.Layers, cfg.Density)},
	}
}

// RunDAGStudyContext evaluates every (topology, heuristic) cell on one
// synthetic instance: Stage I under the DAG objective, then one
// degraded-availability Stage-II case with release gating. It reports
// the DAG phi_1, the expected completion of the latest sink, and
// whether the whole batch met the deadline at runtime. Seeded studies
// are bit-identical for any worker count.
func RunDAGStudyContext(ctx context.Context, cfg DAGStudyConfig) (*report.Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Apps < 2 || cfg.Reps <= 0 || cfg.Slack <= 0 || len(cfg.Heuristics) == 0 {
		return nil, fmt.Errorf("experiments: invalid DAG study config %+v", cfg)
	}
	base, err := SyntheticInstance(cfg.Seed, cfg.Apps, cfg.Type1, cfg.Type2, cfg.Slack)
	if err != nil {
		return nil, err
	}
	topos := studyTopologies(cfg)
	t := report.NewTable(
		fmt.Sprintf("DAG study: %d applications, deadline slack %.2f, runtime availability scaled to %.0f%%",
			cfg.Apps, cfg.Slack, cfg.Scale*100),
		"Topology", "Heuristic", "phi1 (%)", "E[sink] / deadline", "Batch met deadline")
	type cellResult struct {
		phi, ratio float64
		met        bool
		err        error
	}
	type cell struct{ topo, heur int }
	var jobs []cell
	for ti := range topos {
		for hi := range cfg.Heuristics {
			jobs = append(jobs, cell{topo: ti, heur: hi})
		}
	}
	results := make([]cellResult, len(jobs))
	prog := tracing.DefaultProgress()
	prog.PlanCases(len(jobs))
	if err := forEachParallel(ctx, cfg.Workers, len(jobs), func(i int) {
		defer prog.CaseDone()
		j := jobs[i]
		phi, ratio, met, err := evalDAGCell(ctx, base, topos[j.topo].edges, cfg.Heuristics[j.heur], cfg)
		results[i] = cellResult{phi: phi, ratio: ratio, met: met, err: err}
	}); err != nil {
		return nil, fmt.Errorf("experiments: DAG study canceled: %w", err)
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
	}
	i := 0
	for _, topo := range topos {
		for _, h := range cfg.Heuristics {
			r := results[i]
			i++
			met := "no"
			if r.met {
				met = "yes"
			}
			t.AddRow(topo.name, h,
				fmt.Sprintf("%.1f", r.phi*100),
				fmt.Sprintf("%.2f", r.ratio),
				met)
		}
	}
	return t, nil
}

// evalDAGCell runs one (topology, heuristic) cell: a fresh problem over
// the shared instance, Stage I, the composed Stage-I evaluation, and a
// single degraded Stage-II case released along the edges.
func evalDAGCell(ctx context.Context, base *ra.Problem, edges []sysmodel.Edge, heuristic string, cfg DAGStudyConfig) (phi, ratio float64, met bool, err error) {
	h, err := ra.ByName(heuristic)
	if err != nil {
		return 0, 0, false, err
	}
	prob := &ra.Problem{Sys: base.Sys, Batch: base.Batch, Deadline: base.Deadline,
		Edges: edges, Backend: cfg.Backend}
	alloc, err := ra.SolveContext(ctx, h, prob)
	if err != nil {
		return 0, 0, false, err
	}
	st, err := robustness.EvaluateStageIDAG(base.Sys, base.Batch, edges, alloc, base.Deadline)
	if err != nil {
		return 0, 0, false, err
	}
	latest := 0.0
	for _, s := range sysmodel.Sinks(edges, len(base.Batch)) {
		if st.ExpectedTimes[s] > latest {
			latest = st.ExpectedTimes[s]
		}
	}
	f := &core.Framework{Sys: base.Sys, Batch: base.Batch, Deadline: base.Deadline, Edges: edges}
	scaled := make([]pmf.PMF, len(base.Sys.Types))
	for j, pt := range base.Sys.Types {
		scaled[j] = pt.Avail.Scale(cfg.Scale)
	}
	simCfg := core.DefaultStageII(base.Deadline, cfg.Seed)
	simCfg.PMFBackend = cfg.Backend
	simCfg.Reps = cfg.Reps
	simCfg.Model = func(p pmf.PMF) availability.Model {
		return availability.Markov{PMF: p, Interval: base.Deadline / 4, Persistence: 0.5}
	}
	ras, err := techSet([]string{"FAC", "WF", "AWF-B", "AF"})
	if err != nil {
		return 0, 0, false, err
	}
	sc := core.Scenario{Name: "dag: " + heuristic, IM: fixedAlloc{alloc}, RAS: ras}
	res, err := f.RunScenarioContext(ctx, sc, []core.Case{{Name: "degraded", Avail: scaled}}, simCfg)
	if err != nil {
		return 0, 0, false, err
	}
	return st.Phi1, latest / base.Deadline, res.Cases[0].AllMeet, nil
}

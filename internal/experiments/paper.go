// Package experiments embeds the paper's small-scale example (Section
// IV): the heterogeneous system of Table I, the application batch of
// Tables II and III, and drivers that regenerate every table and figure
// of the evaluation. The cmd/expgen tool and the repository benchmarks
// are thin wrappers around this package.
package experiments

import (
	"cdsf/internal/core"
	"cdsf/internal/pmf"
	"cdsf/internal/rng"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

// Deadline is the paper's common system deadline (time units).
const Deadline = 3250

// DefaultPulses is the number of equiprobable pulses used when
// discretizing the Normal(mu, mu/10) execution-time distributions. The
// paper samples the normals; Discretize is the deterministic equivalent
// and 250 pulses bound the deadline-probability quantization error by
// ~0.1 percentage points.
const DefaultPulses = 250

// Availability PMFs of Table I, by case and processor type, expressed
// as fractions. Case 1 is the reference A-hat.
var (
	availCase1Type1 = pmf.MustNew([]pmf.Pulse{{Value: 0.75, Prob: 0.50}, {Value: 1.00, Prob: 0.50}})
	availCase1Type2 = pmf.MustNew([]pmf.Pulse{{Value: 0.25, Prob: 0.25}, {Value: 0.50, Prob: 0.25}, {Value: 1.00, Prob: 0.50}})

	availCase2Type1 = pmf.MustNew([]pmf.Pulse{{Value: 0.50, Prob: 0.90}, {Value: 0.75, Prob: 0.10}})
	availCase2Type2 = pmf.MustNew([]pmf.Pulse{{Value: 0.33, Prob: 0.45}, {Value: 0.66, Prob: 0.45}, {Value: 1.00, Prob: 0.10}})

	availCase3Type1 = pmf.MustNew([]pmf.Pulse{{Value: 0.52, Prob: 0.50}, {Value: 0.69, Prob: 0.50}})
	availCase3Type2 = pmf.MustNew([]pmf.Pulse{{Value: 0.17, Prob: 0.25}, {Value: 0.35, Prob: 0.25}, {Value: 0.69, Prob: 0.50}})

	availCase4Type1 = pmf.MustNew([]pmf.Pulse{{Value: 0.33, Prob: 0.75}, {Value: 0.66, Prob: 0.25}})
	availCase4Type2 = pmf.MustNew([]pmf.Pulse{{Value: 0.20, Prob: 0.50}, {Value: 0.80, Prob: 0.25}, {Value: 1.00, Prob: 0.25}})
)

// ReferenceSystem returns the paper's system: 4 processors of type 1
// and 8 of type 2, with the case-1 (reference) availability PMFs.
func ReferenceSystem() *sysmodel.System {
	return &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "Type 1", Count: 4, Avail: availCase1Type1},
		{Name: "Type 2", Count: 8, Avail: availCase1Type2},
	}}
}

// Cases returns the paper's four runtime availability cases in order.
// Case 1 equals the reference availability.
func Cases() []core.Case {
	return []core.Case{
		{Name: "Case 1", Avail: []pmf.PMF{availCase1Type1, availCase1Type2}},
		{Name: "Case 2", Avail: []pmf.PMF{availCase2Type1, availCase2Type2}},
		{Name: "Case 3", Avail: []pmf.PMF{availCase3Type1, availCase3Type2}},
		{Name: "Case 4", Avail: []pmf.PMF{availCase4Type1, availCase4Type2}},
	}
}

// Mean single-processor execution times (Table III), indexed
// [application][type].
var meanTimes = [3][2]float64{
	{1800, 4000},
	{2800, 6000},
	{12000, 8000},
}

// Iteration counts (Table II). The printed table garbles application
// 3's parallel count; it is reconstructed as 4104 from the stated 5%/95%
// split (216 serial iterations at a 5% serial fraction imply a total of
// 4320, hence 4104 parallel), which reproduces Table V's robust-IM
// expected time for application 3 (2699.86) exactly.
var iterCounts = [3][2]int{
	{439, 1024},
	{512, 2048},
	{216, 4104},
}

// AppNames are the application labels used across reports.
var AppNames = [3]string{"App 1", "App 2", "App 3"}

// PaperBatch returns the paper's three applications with execution-time
// PMFs discretized from Normal(mu, mu/10) into the given number of
// equiprobable pulses (DefaultPulses reproduces the paper's headline
// probabilities to ~0.1 pp).
func PaperBatch(pulses int) sysmodel.Batch {
	b := make(sysmodel.Batch, 3)
	for i := range b {
		exec := make([]pmf.PMF, 2)
		for j := 0; j < 2; j++ {
			mu := meanTimes[i][j]
			exec[j] = pmf.Discretize(stats.NewNormal(mu, mu/10), pulses)
		}
		b[i] = sysmodel.Application{
			Name:          AppNames[i],
			SerialIters:   iterCounts[i][0],
			ParallelIters: iterCounts[i][1],
			ExecTime:      exec,
		}
	}
	return b
}

// SampledBatch is PaperBatch's stochastic twin: execution-time PMFs are
// built by drawing `samples` variates from the same normals and binning
// them, exactly as the paper describes. It exists to show the framework
// is insensitive to the PMF construction method.
func SampledBatch(seed uint64, samples, bins int) sysmodel.Batch {
	r := rng.New(seed)
	b := make(sysmodel.Batch, 3)
	for i := range b {
		exec := make([]pmf.PMF, 2)
		for j := 0; j < 2; j++ {
			mu := meanTimes[i][j]
			exec[j] = pmf.Sampled(stats.NewNormal(mu, mu/10), samples, bins, r)
		}
		b[i] = sysmodel.Application{
			Name:          AppNames[i],
			SerialIters:   iterCounts[i][0],
			ParallelIters: iterCounts[i][1],
			ExecTime:      exec,
		}
	}
	return b
}

// Framework returns the full paper instance: reference system, batch
// (deterministic PMFs with DefaultPulses), and deadline.
func Framework() *core.Framework {
	return &core.Framework{
		Sys:      ReferenceSystem(),
		Batch:    PaperBatch(DefaultPulses),
		Deadline: Deadline,
	}
}

// PaperNaiveAllocation is Table IV's naive IM row: applications 1 and 3
// on 4 processors of type 2 each, application 2 on 4 processors of
// type 1.
func PaperNaiveAllocation() sysmodel.Allocation {
	return sysmodel.Allocation{
		{Type: 1, Procs: 4},
		{Type: 0, Procs: 4},
		{Type: 1, Procs: 4},
	}
}

// PaperRobustAllocation is Table IV's robust IM row: applications 1 and
// 2 on 2 processors of type 1 each, application 3 on 8 processors of
// type 2.
func PaperRobustAllocation() sysmodel.Allocation {
	return sysmodel.Allocation{
		{Type: 0, Procs: 2},
		{Type: 0, Procs: 2},
		{Type: 1, Procs: 8},
	}
}

// PaperTableV lists the paper's Table V expected completion times
// (time units), indexed [row][app] with row 0 = naive IM, row 1 =
// robust IM.
var PaperTableV = [2][3]float64{
	{3800.02, 1306.39, 4599.76},
	{1365.46, 1959.59, 2699.86},
}

// PaperPhi1 lists the paper's Stage-I joint deadline probabilities for
// the naive and robust allocations.
var PaperPhi1 = struct{ Naive, Robust float64 }{Naive: 0.26, Robust: 0.745}

// PaperDecreases lists Table I's bracketed weighted-availability
// decreases (fractions) for cases 2-4 as printed in the paper. The
// printed case-3 numbers are internally inconsistent by ~0.1 pp with the
// printed PMFs (the PMFs give 30.89%); tests use a matching tolerance.
var PaperDecreases = [3]float64{0.2817, 0.3077, 0.3277}

// PaperTableVI is Table VI: the best deadline-meeting DLS technique per
// application (rows) and availability case (columns); "" marks the
// paper's dash (no technique met the deadline).
var PaperTableVI = [3][4]string{
	{"WF", "AF", "AF", "AF"},
	{"WF", "WF", "AF", ""},
	{"AF", "AF", "AF", "AF"},
}

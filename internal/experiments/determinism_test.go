package experiments

import (
	"math"
	"strconv"
	"testing"

	"cdsf/internal/robustness"
	"cdsf/internal/sysmodel"
)

// TestStageIBitsPinned pins the sparse backend's Stage-I outputs on the
// paper instance to exact float64 bit patterns. The sparse backend is
// the repository's reference: its seeded outputs are contractually
// bit-identical across releases, worker counts, and the introduction of
// the grid backend, so any change to these bits is a breaking change to
// the default numerics and must be deliberate.
func TestStageIBitsPinned(t *testing.T) {
	f := Framework()
	cases := []struct {
		name   string
		alloc  sysmodel.Allocation
		phi1   string
		perApp []string
		exp    []string
	}{
		{
			name:   "naive",
			alloc:  PaperNaiveAllocation(),
			phi1:   "0x1.09374bc6a7efep-02",
			perApp: []string{"0x1.09374bc6a7efcp-01", "0x1p+00", "0x1.0000000000002p-01"},
			exp:    []string{"0x1.db0d1fac02181p+11", "0x1.46aaaaaaaaaap+10", "0x1.1f7fffffffffap+12"},
		},
		{
			name:   "robust",
			alloc:  PaperRobustAllocation(),
			phi1:   "0x1.7d70a3d70a3dbp-01",
			perApp: []string{"0x1p+00", "0x1p+00", "0x1.7d70a3d70a3dbp-01"},
			exp:    []string{"0x1.554497e29a556p+10", "0x1.e9ffffffffff4p+10", "0x1.517fffffffff5p+11"},
		},
	}
	parse := func(s string) float64 {
		v, err := parseHexFloat(s)
		if err != nil {
			t.Fatalf("parsing golden %q: %v", s, err)
		}
		return v
	}
	for _, c := range cases {
		res, err := robustness.EvaluateStageI(f.Sys, f.Batch, c.alloc, f.Deadline)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got, want := res.Phi1, parse(c.phi1); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: phi1 = %x, pinned %x", c.name, got, want)
		}
		for i := range res.PerApp {
			if got, want := res.PerApp[i], parse(c.perApp[i]); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s: perApp[%d] = %x, pinned %x", c.name, i, got, want)
			}
			if got, want := res.ExpectedTimes[i], parse(c.exp[i]); math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s: expected[%d] = %x, pinned %x", c.name, i, got, want)
			}
		}
	}
}

// TestMakespanPMFDeterministic pins the batch makespan distribution:
// repeated constructions must agree bit-for-bit. Before the sequential
// Rebin rewrite this was ULP-unstable run to run (the old map-based
// rebinning summed the normalization total in map iteration order);
// the pinned bits below are the stable values under the support-union
// CDF-product Max (which moved them by one ulp relative to the old
// cross-product Combine path).
func TestMakespanPMFDeterministic(t *testing.T) {
	f := Framework()
	cases := []struct {
		name             string
		alloc            sysmodel.Allocation
		wantLen          int
		wantMean, wantPr string
	}{
		{"naive", PaperNaiveAllocation(), 187, "0x1.60d662d8b76cdp+12", "0x1.0b43958106247p-02"},
		{"robust", PaperRobustAllocation(), 162, "0x1.78ad28e93736ap+11", "0x1.7d70a3d70a3d8p-01"},
	}
	for _, c := range cases {
		first, err := robustness.MakespanPMF(f.Sys, f.Batch, c.alloc, 200)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if first.Len() != c.wantLen {
			t.Errorf("%s: makespan support %d pulses, pinned %d", c.name, first.Len(), c.wantLen)
		}
		wantMean, err := parseHexFloat(c.wantMean)
		if err != nil {
			t.Fatal(err)
		}
		wantPr, err := parseHexFloat(c.wantPr)
		if err != nil {
			t.Fatal(err)
		}
		if got := first.Mean(); math.Float64bits(got) != math.Float64bits(wantMean) {
			t.Errorf("%s: makespan mean = %x, pinned %x", c.name, got, wantMean)
		}
		if got := first.PrLE(f.Deadline); math.Float64bits(got) != math.Float64bits(wantPr) {
			t.Errorf("%s: Pr(T<=deadline) = %x, pinned %x", c.name, got, wantPr)
		}
		// Rebuild several times: identical bits every time, which the old
		// map-order rebinning could not guarantee.
		for rep := 0; rep < 5; rep++ {
			again, err := robustness.MakespanPMF(f.Sys, f.Batch, c.alloc, 200)
			if err != nil {
				t.Fatalf("%s rep %d: %v", c.name, rep, err)
			}
			if math.Float64bits(again.Mean()) != math.Float64bits(first.Mean()) ||
				math.Float64bits(again.PrLE(f.Deadline)) != math.Float64bits(first.PrLE(f.Deadline)) ||
				again.Len() != first.Len() {
				t.Fatalf("%s rep %d: makespan distribution not bit-identical across rebuilds", c.name, rep)
			}
		}
	}
}

// parseHexFloat parses a %x-formatted float64 golden.
func parseHexFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

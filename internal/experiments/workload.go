package experiments

import (
	"context"
	"fmt"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/report"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
)

// This file checks the reproduction's conclusions against workload
// assumptions the paper leaves open: the iteration-time distribution
// family (the paper's PMFs come from normals, but irregular scientific
// loops are right-skewed) and systematic cost gradients across the
// iteration space.

// GenerateDistributionSensitivity simulates the paper's application 3
// under four iteration-time families with the same mean and (where
// applicable) the same coefficient of variation.
func GenerateDistributionSensitivity(seed uint64, reps int) (*report.Table, error) {
	_, _, iterMean, avail := sensApp()
	dists := []struct {
		name string
		d    stats.Dist
	}{
		{"normal", stats.NewNormal(iterMean, 0.3*iterMean)},
		{"lognormal", stats.LogNormalFromMoments(iterMean, 0.3*iterMean)},
		{"gamma", stats.GammaFromMoments(iterMean, 0.3*iterMean)},
		{"exponential", stats.NewExponential(1 / iterMean)},
	}
	headers := []string{"Technique"}
	for _, d := range dists {
		headers = append(headers, d.name)
	}
	t := report.NewTable("Iteration-time-distribution sensitivity: mean makespan of App 3 (same mean)", headers...)
	model := availability.Markov{PMF: avail, Interval: Deadline / 4, Persistence: 0.5}
	b := PaperBatch(DefaultPulses)
	for _, tech := range dls.PaperRobustSet() {
		row := []string{tech.Name}
		for _, d := range dists {
			s, err := sim.RunManyContext(context.Background(), sim.Config{
				SerialIters:      b[2].SerialIters,
				ParallelIters:    b[2].ParallelIters,
				Workers:          8,
				IterTime:         d.d,
				Avail:            model,
				Technique:        tech,
				WeightsFromAvail: true,
				BestMaster:       true,
				Overhead:         1,
				Seed:             seed,
			}, reps)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", s.Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// GenerateProfileSensitivity simulates the paper's application 3 under
// the built-in iteration-cost profiles, comparing STATIC against the
// robust set: systematic gradients break equal-iteration splits even on
// fully available processors.
func GenerateProfileSensitivity(seed uint64, reps int) (*report.Table, error) {
	_, _, iterMean, avail := sensApp()
	names := []string{"flat", "increasing", "decreasing", "peaked", "alternating"}
	headers := []string{"Technique"}
	headers = append(headers, names...)
	t := report.NewTable("Iteration-profile sensitivity: mean makespan of App 3", headers...)
	model := availability.Markov{PMF: avail, Interval: Deadline / 4, Persistence: 0.5}
	b := PaperBatch(DefaultPulses)
	techList := append([]dls.Technique{}, dls.PaperRobustSet()...)
	if static, ok := dls.Get("STATIC"); ok {
		techList = append([]dls.Technique{static}, techList...)
	}
	for _, tech := range techList {
		row := []string{tech.Name}
		for _, pn := range names {
			p, err := sim.ProfileByName(pn)
			if err != nil {
				return nil, err
			}
			s, err := sim.RunManyContext(context.Background(), sim.Config{
				SerialIters:      b[2].SerialIters,
				ParallelIters:    b[2].ParallelIters,
				Workers:          8,
				IterTime:         stats.NewNormal(iterMean, 0.3*iterMean),
				IterProfile:      p,
				Avail:            model,
				Technique:        tech,
				WeightsFromAvail: true,
				BestMaster:       true,
				Overhead:         1,
				Seed:             seed,
			}, reps)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", s.Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

package experiments

import (
	"context"
	"fmt"
	"testing"

	"cdsf/internal/core"
	"cdsf/internal/ra"
)

// TestProbeScenario4 prints the full scenario-4 grid for calibration;
// it asserts nothing beyond successful execution and is mainly read
// with -v.
func TestProbeScenario4(t *testing.T) {
	if testing.Short() {
		t.Skip("probe is slow")
	}
	f := Framework()
	cfg := core.DefaultStageII(Deadline, 42)
	sc := core.Scenario{Name: "4", IM: ra.Exhaustive{}, RAS: core.RobustRAS()}
	res, err := f.RunScenarioContext(context.Background(), sc, Cases(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("phi1=%.4f alloc=%v", res.StageI.Phi1, res.StageI.Alloc)
	for _, c := range res.Cases {
		t.Logf("%s decrease=%.2f%% allMeet=%v", c.Case.Name, c.Decrease*100, c.AllMeet)
		for i, outs := range c.PerApp {
			line := "  " + AppNames[i] + ": "
			for _, o := range outs {
				mark := " "
				if o.Meets {
					mark = "*"
				}
				line += fmt.Sprintf("%s=%.0f%s ", o.Technique, o.MeanTime, mark)
			}
			line += "best=" + c.Best[i]
			t.Log(line)
		}
	}
}

package experiments

import (
	"context"
	"fmt"
	"testing"

	"cdsf/internal/availability"
	"cdsf/internal/core"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
)

// TestProbeAvailabilityModels sweeps availability-model choices to
// calibrate the Stage-II dynamics against the paper's Table VI shape.
func TestProbeAvailabilityModels(t *testing.T) {
	if testing.Short() {
		t.Skip("probe is slow")
	}
	models := []struct {
		name string
		mk   func(p pmf.PMF) availability.Model
	}{
		{"static", func(p pmf.PMF) availability.Model { return availability.Static{PMF: p} }},
		{"markov p=0.9 i=400", func(p pmf.PMF) availability.Model {
			return availability.Markov{PMF: p, Interval: 400, Persistence: 0.9}
		}},
		{"markov p=0.8 i=200", func(p pmf.PMF) availability.Model {
			return availability.Markov{PMF: p, Interval: 200, Persistence: 0.8}
		}},
		{"redraw i=800", func(p pmf.PMF) availability.Model {
			return availability.Redraw{PMF: p, Interval: 800}
		}},
	}
	f := Framework()
	sc := core.Scenario{Name: "4", IM: ra.Exhaustive{}, RAS: core.RobustRAS()}
	for _, m := range models {
		cfg := core.DefaultStageII(Deadline, 42)
		cfg.Model = m.mk
		res, err := f.RunScenarioContext(context.Background(), sc, Cases(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("== model %s", m.name)
		for _, c := range res.Cases {
			line := fmt.Sprintf("%s (%5.2f%%) meet=%-5v ", c.Case.Name, c.Decrease*100, c.AllMeet)
			for i, outs := range c.PerApp {
				line += AppNames[i] + "["
				for _, o := range outs {
					mark := ""
					if !o.Meets {
						mark = "!"
					}
					line += fmt.Sprintf("%s=%.0f%s ", o.Technique, o.MeanTime, mark)
				}
				line += "best=" + c.Best[i] + "] "
			}
			t.Log(line)
		}
	}
}

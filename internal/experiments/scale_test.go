package experiments

import (
	"context"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"cdsf/internal/ra"
)

func TestSyntheticInstanceValid(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		prob, err := SyntheticInstance(seed, 5, 8, 16, 1.3)
		if err != nil {
			t.Fatal(err)
		}
		if err := prob.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if prob.Deadline <= 0 {
			t.Fatalf("seed %d: deadline %v", seed, prob.Deadline)
		}
		// The deadline is slack times the calibration allocation's
		// expected makespan (the two-phase allocation computed with an
		// unconstrained deadline, exactly as SyntheticInstance does).
		calib := &ra.Problem{Sys: prob.Sys, Batch: prob.Batch, Deadline: 1e12}
		al, err := (ra.TwoPhaseGreedy{}).Allocate(calib)
		if err != nil {
			t.Fatal(err)
		}
		maxExp := 0.0
		for i := range prob.Batch {
			e := prob.Batch[i].CompletionPMF(al[i].Type, al[i].Procs,
				prob.Sys.Types[al[i].Type].Avail).Mean()
			if e > maxExp {
				maxExp = e
			}
		}
		if got := prob.Deadline / maxExp; got < 1.29 || got > 1.31 {
			t.Errorf("seed %d: deadline/makespan = %v, want the 1.3 slack", seed, got)
		}
	}
}

func TestScaleStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale study is slow")
	}
	cfg := DefaultScaleConfig(1)
	cfg.Instances = 4
	cfg.Sizes = [][3]int{{3, 4, 8}, {6, 8, 16}}
	cfg.Reps = 6
	tbl, err := RunScaleStudyContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	t.Logf("\n%s", out)

	// Sum the met-deadline column (last field) per quadrant across
	// sizes; the robust-robust quadrant must not lose to naive-naive.
	sumMet := func(name string) float64 {
		total := 0.0
		n := 0
		for _, line := range strings.Split(out, "\n") {
			if !strings.Contains(line, name) {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) < 2 {
				continue
			}
			met, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				continue
			}
			total += met
			n++
		}
		if n == 0 {
			t.Fatalf("quadrant %q not found:\n%s", name, out)
		}
		return total
	}
	nn := sumMet("naive IM + STATIC")
	rr := sumMet("robust IM + robust DLS")
	if rr < nn {
		t.Errorf("robust-robust met %v < naive-naive %v", rr, nn)
	}
}

// TestScaleStudyDeterministicAcrossWorkers checks that the parallel
// per-cell fan-out produces a byte-identical report for every worker
// count: each cell's seed is a pure function of the config, and the
// aggregation runs in the original order.
func TestScaleStudyDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("scale study is slow")
	}
	cfg := DefaultScaleConfig(7)
	cfg.Instances = 2
	cfg.Sizes = [][3]int{{3, 4, 8}}
	cfg.Reps = 3
	cfg.Workers = 1
	ref, err := RunScaleStudyContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{3, runtime.NumCPU()} {
		cfg.Workers = w
		tbl, err := RunScaleStudyContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if tbl.String() != ref.String() {
			t.Fatalf("workers=%d report differs from sequential:\n%s\n--- want ---\n%s", w, tbl, ref)
		}
	}
}

package experiments

import (
	"testing"
)

func TestDistributionSensitivityRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	tbl, err := GenerateDistributionSensitivity(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, name := range []string{"FAC", "WF", "AWF-B", "AF"} {
		row := rowFloats(t, out, name)
		if len(row) != 4 {
			t.Fatalf("%s row has %d cells:\n%s", name, len(row), out)
		}
		for _, v := range row {
			if v <= 0 {
				t.Errorf("%s: non-positive makespan %v", name, v)
			}
		}
	}
}

func TestProfileSensitivityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	tbl, err := GenerateProfileSensitivity(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	static := rowFloats(t, out, "STATIC")
	af := rowFloats(t, out, "AF ")
	if len(static) != 5 || len(af) != 5 {
		t.Fatalf("missing cells:\n%s", out)
	}
	// Under runtime availability perturbation the availability
	// imbalance dominates STATIC's loss in every column (the
	// dedicated-processor gradient effect is asserted in
	// sim.TestStaticSuffersOnIncreasingProfile); here the robust claim
	// is that AF beats STATIC under every profile, comfortably.
	for i := 0; i < 5; i++ {
		if static[i] <= af[i]*1.2 {
			t.Errorf("column %d: STATIC %v not clearly worse than AF %v:\n%s",
				i, static[i], af[i], out)
		}
	}
}

func TestBatchPolicyStudy(t *testing.T) {
	tbl, err := GenerateBatchPolicyStudy(3, 40)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	greedy := rowFloats(t, out, "greedy")
	sized := rowFloats(t, out, "size(3)")
	if len(greedy) < 4 || len(sized) < 4 {
		t.Fatalf("missing cells:\n%s", out)
	}
	// Size-thresholded batching groups more jobs per batch than greedy.
	if sized[1] <= greedy[1] {
		t.Errorf("size policy batch %v <= greedy %v:\n%s", sized[1], greedy[1], out)
	}
	if _, err := GenerateBatchPolicyStudy(3, 0); err == nil {
		t.Error("zero jobs accepted")
	}
}

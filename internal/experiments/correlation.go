package experiments

import (
	"fmt"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/report"
)

// GenerateCorrelationStudy addresses the paper's future-work question
// on correlated availabilities: the paper's application 3 is simulated
// while the mix between a system-wide load factor and per-processor
// idiosyncratic load grows from 0 (independent processors, the base
// model) to 1 (perfectly correlated group). Correlated slowdowns cannot
// be rebalanced away — every worker slows together — so the adaptive
// techniques' advantage over STATIC shrinks as the mix grows, while all
// absolute makespans rise.
func GenerateCorrelationStudy(seed uint64, reps int) (*report.Table, error) {
	mixes := []float64{0, 0.25, 0.5, 0.75, 1}
	headers := []string{"Technique"}
	for _, m := range mixes {
		headers = append(headers, fmt.Sprintf("mix=%g", m))
	}
	t := report.NewTable("Correlated-availability study: mean makespan of App 3 (shared-load mix)", headers...)
	_, _, _, avail := sensApp()
	for _, name := range []string{"STATIC", "FAC", "WF", "AWF-B", "AF"} {
		tech, ok := dls.Get(name)
		if !ok {
			return nil, fmt.Errorf("experiments: technique %q missing", name)
		}
		row := []string{name}
		for _, mix := range mixes {
			model := &availability.SharedLoad{
				Shared:      avail,
				Idio:        avail,
				Mix:         mix,
				Interval:    Deadline / 4,
				Persistence: 0.5,
			}
			s, err := sensSim(tech, 1, 0.3, model, reps, seed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", s.Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

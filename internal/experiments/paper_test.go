package experiments

import (
	"math"
	"testing"

	"cdsf/internal/robustness"
)

func near(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

// TestPaperTableI verifies the expected and weighted availabilities and
// the bracketed decreases of Table I.
func TestPaperTableI(t *testing.T) {
	sys := ReferenceSystem()
	near(t, sys.Types[0].ExpectedAvail(), 0.8750, 1e-9, "E[avail type1 case1]")
	near(t, sys.Types[1].ExpectedAvail(), 0.6875, 1e-9, "E[avail type2 case1]")
	near(t, sys.WeightedAvailability(), 0.75, 1e-9, "weighted availability case1")

	wantExpected := [4][2]float64{
		{0.8750, 0.6875},
		{0.5250, 0.5455},
		{0.6050, 0.4750}, // paper prints 60.58/47.60; PMFs give 60.50/47.50
		{0.4125, 0.5500},
	}
	wantWeighted := [4]float64{0.7500, 0.5387, 0.5183, 0.5042}
	for ci, c := range Cases() {
		pert := sys.WithAvailability(c.Avail)
		for j := 0; j < 2; j++ {
			near(t, pert.Types[j].ExpectedAvail(), wantExpected[ci][j], 2e-3,
				c.Name+" expected avail type "+pert.Types[j].Name)
		}
		near(t, pert.WeightedAvailability(), wantWeighted[ci], 2e-3, c.Name+" weighted availability")
		if ci > 0 {
			dec := robustness.AvailabilityDecrease(sys, pert)
			near(t, dec, PaperDecreases[ci-1], 3e-3, c.Name+" availability decrease")
		}
	}
}

// TestPaperTableVAndPhi1 verifies the Table V expected completion times
// and the headline phi_1 values for both Table IV allocations.
func TestPaperTableVAndPhi1(t *testing.T) {
	f := Framework()
	naive, err := robustness.EvaluateStageI(f.Sys, f.Batch, PaperNaiveAllocation(), f.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := robustness.EvaluateStageI(f.Sys, f.Batch, PaperRobustAllocation(), f.Deadline)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		near(t, naive.ExpectedTimes[i], PaperTableV[0][i], PaperTableV[0][i]*0.005,
			"Table V naive "+AppNames[i])
		near(t, robust.ExpectedTimes[i], PaperTableV[1][i], PaperTableV[1][i]*0.005,
			"Table V robust "+AppNames[i])
	}
	near(t, naive.Phi1, PaperPhi1.Naive, 0.01, "phi1 naive")
	near(t, robust.Phi1, PaperPhi1.Robust, 0.01, "phi1 robust")
}

// TestSampledBatchAgreesWithDiscretized verifies the framework is
// insensitive to the PMF construction method: the sampling construction
// the paper describes and the deterministic discretization this
// repository defaults to give the same Stage-I probabilities within
// sampling noise.
func TestSampledBatchAgreesWithDiscretized(t *testing.T) {
	f := Framework()
	sampled := SampledBatch(11, 100000, 200)
	naiveD, err := robustness.StageIProbability(f.Sys, f.Batch, PaperNaiveAllocation(), Deadline)
	if err != nil {
		t.Fatal(err)
	}
	naiveS, err := robustness.StageIProbability(f.Sys, sampled, PaperNaiveAllocation(), Deadline)
	if err != nil {
		t.Fatal(err)
	}
	robustD, err := robustness.StageIProbability(f.Sys, f.Batch, PaperRobustAllocation(), Deadline)
	if err != nil {
		t.Fatal(err)
	}
	robustS, err := robustness.StageIProbability(f.Sys, sampled, PaperRobustAllocation(), Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(naiveD-naiveS) > 0.02 {
		t.Errorf("naive phi1: discretized %v vs sampled %v", naiveD, naiveS)
	}
	if math.Abs(robustD-robustS) > 0.02 {
		t.Errorf("robust phi1: discretized %v vs sampled %v", robustD, robustS)
	}
}

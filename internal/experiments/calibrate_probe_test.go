package experiments

import (
	"context"
	"fmt"
	"testing"

	"cdsf/internal/availability"
	"cdsf/internal/core"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
)

// paperShapeScore scores how well a Stage-II configuration reproduces
// the paper's qualitative results across scenarios 2 and 4. Maximum is
// 18 points:
//
//	scenario 2 (robust IM + STATIC): some application violates the
//	deadline in every case (+1 per case, 4 total);
//	scenario 4 (robust IM + robust RAS): cases 1-3 all-meet (+2 each),
//	case 4: app 1 meets (+2), app 2 fails for every technique (+2),
//	app 3 met by AF (+2), AF best for app 3 in case 4 (+2).
func paperShapeScore(t *testing.T, f *core.Framework, cfg core.StageIIConfig) (int, string) {
	t.Helper()
	detail := ""
	score := 0
	s2, err := f.RunScenarioContext(context.Background(), core.Scenario{Name: "2", IM: ra.Exhaustive{}, RAS: core.NaiveRAS()}, Cases(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range s2.Cases {
		if !c.AllMeet {
			score++
		} else {
			detail += fmt.Sprintf(" s2:%s-meets", c.Case.Name)
		}
	}
	s4, err := f.RunScenarioContext(context.Background(), core.Scenario{Name: "4", IM: ra.Exhaustive{}, RAS: core.RobustRAS()}, Cases(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ci := 0; ci < 3; ci++ {
		if s4.Cases[ci].AllMeet {
			score += 2
		} else {
			detail += fmt.Sprintf(" s4:%s-fails", s4.Cases[ci].Case.Name)
		}
	}
	c4 := s4.Cases[3]
	if c4.Best[0] != "" {
		score += 2
	} else {
		detail += " s4:c4-app1-fails"
	}
	if c4.Best[1] == "" {
		score += 2
	} else {
		detail += " s4:c4-app2-meets"
	}
	afMeets, afBest := false, false
	for _, o := range c4.PerApp[2] {
		if o.Technique == "AF" && o.Meets {
			afMeets = true
		}
	}
	if c4.Best[2] == "AF" {
		afBest = true
	}
	if afMeets {
		score += 2
	} else {
		detail += " s4:c4-app3-AF-fails"
	}
	if afBest {
		score += 2
	} else {
		detail += fmt.Sprintf(" s4:c4-app3-best=%s", c4.Best[2])
	}
	return score, detail
}

// TestCalibrateStageII sweeps availability models and scores each
// against the paper's qualitative shape.
func TestCalibrateStageII(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	f := Framework()
	models := []struct {
		name string
		mk   func(p pmf.PMF) availability.Model
	}{
		{"static", func(p pmf.PMF) availability.Model { return availability.Static{PMF: p} }},
		{"redraw-1200", func(p pmf.PMF) availability.Model { return availability.Redraw{PMF: p, Interval: 1200} }},
		{"redraw-1600", func(p pmf.PMF) availability.Model { return availability.Redraw{PMF: p, Interval: 1600} }},
		{"markov-800-0.5", func(p pmf.PMF) availability.Model {
			return availability.Markov{PMF: p, Interval: 800, Persistence: 0.5}
		}},
	}
	for _, m := range models {
		cfg := core.DefaultStageII(Deadline, 42)
		cfg.Model = m.mk
		score, detail := paperShapeScore(t, f, cfg)
		t.Logf("%-16s score=%2d/18%s", m.name, score, detail)
	}
}

// TestDefaultConfigSeedStability checks the calibrated default
// configuration keeps the paper shape across seeds.
func TestDefaultConfigSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("stability sweep is slow")
	}
	f := Framework()
	for _, seed := range []uint64{1, 7, 42, 1234, 99991} {
		cfg := core.DefaultStageII(Deadline, seed)
		score, detail := paperShapeScore(t, f, cfg)
		t.Logf("seed=%-6d score=%2d/18%s", seed, score, detail)
		if score < 15 {
			t.Errorf("seed %d: paper-shape score %d/18 (%s)", seed, score, detail)
		}
	}
}

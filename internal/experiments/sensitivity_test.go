package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parseCells pulls float cells out of a rendered row by column order.
func rowFloats(t *testing.T, table, rowPrefix string) []float64 {
	t.Helper()
	for _, line := range strings.Split(table, "\n") {
		if !strings.HasPrefix(line, rowPrefix) {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, rowPrefix))
		var out []float64
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err == nil {
				out = append(out, v)
			}
		}
		return out
	}
	t.Fatalf("row %q not found in:\n%s", rowPrefix, table)
	return nil
}

func TestOverheadSensitivityMonotoneForSS(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	tbl, err := GenerateOverheadSensitivity(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	ss := rowFloats(t, tbl.String(), "SS")
	if len(ss) < 4 {
		t.Fatalf("SS row cells: %v", ss)
	}
	// SS pays per-iteration overhead: makespan must grow sharply from
	// h=0 to the largest h.
	if ss[len(ss)-1] <= ss[0]*1.5 {
		t.Errorf("SS not overhead-sensitive: %v", ss)
	}
	// FAC amortizes: growth bounded.
	fac := rowFloats(t, tbl.String(), "FAC")
	if fac[len(fac)-1] > fac[0]*1.5 {
		t.Errorf("FAC unexpectedly overhead-sensitive: %v", fac)
	}
}

func TestCVSensitivityRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	tbl, err := GenerateCVSensitivity(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"FAC", "WF", "AWF-B", "AF"} {
		row := rowFloats(t, tbl.String(), name)
		for _, v := range row {
			if v <= 0 {
				t.Errorf("%s has non-positive makespan %v", name, v)
			}
		}
	}
}

func TestModelSensitivityRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	tbl, err := GenerateModelSensitivity(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "markov") || !strings.Contains(tbl.String(), "static") {
		t.Errorf("model columns missing:\n%s", tbl.String())
	}
}

func TestGranularitySensitivityConverges(t *testing.T) {
	tbl, err := GenerateGranularitySensitivity()
	if err != nil {
		t.Fatal(err)
	}
	robust := rowFloats(t, tbl.String(), "robust IM")
	// The last two pulse counts (250, 1000) must agree to half a point
	// and sit near the paper's 74.5%.
	last, prev := robust[len(robust)-1], robust[len(robust)-2]
	if diff := last - prev; diff > 0.5 || diff < -0.5 {
		t.Errorf("phi1 not converged: %v", robust)
	}
	if last < 73.5 || last > 75.5 {
		t.Errorf("converged phi1 = %v, want ~74.5", last)
	}
}

func TestDeadlineCurveMonotone(t *testing.T) {
	tbl, err := GenerateDeadlineCurve()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"naive IM", "robust IM"} {
		row := rowFloats(t, tbl.String(), name)
		for i := 1; i < len(row); i++ {
			if row[i] < row[i-1]-1e-9 {
				t.Errorf("%s curve not monotone: %v", name, row)
				break
			}
		}
		if row[len(row)-1] < 99.9 {
			t.Errorf("%s curve does not reach 1 at a huge deadline: %v", name, row)
		}
	}
}

func TestToleranceCurveDecreasing(t *testing.T) {
	tbl, err := GenerateToleranceCurve()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	if !strings.Contains(out, "74.50") {
		t.Errorf("unscaled phi1 not 74.50:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	prev := 101.0
	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		if len(fields) != 3 {
			continue
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue // header/separator row
		}
		if v > prev+1e-9 {
			t.Errorf("phi1 increased as availability shrank:\n%s", out)
		}
		prev = v
	}
}

func TestExtendedTechniqueStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	tbl, err := RunExtendedTechniqueStudy(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	// Every registered technique appears; STATIC must satisfy fewer
	// cells than AF.
	staticCells := rowFloats(t, out, "STATIC")
	afCells := rowFloats(t, out, "AF ")
	if len(staticCells) == 0 || len(afCells) == 0 {
		t.Fatalf("missing rows:\n%s", out)
	}
	if staticCells[0] >= afCells[0] {
		t.Errorf("STATIC met %v cells >= AF %v:\n%s", staticCells[0], afCells[0], out)
	}
}

package experiments

import (
	"bytes"
	"context"
	"testing"

	"cdsf/internal/sysmodel"
)

func TestEdgeGeneratorsValid(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for _, tc := range []struct {
			name  string
			edges []sysmodel.Edge
		}{
			{"chain", ChainEdges(n)},
			{"fork-join", ForkJoinEdges(n)},
			{"layered", LayeredEdges(7, n, 3, 0.5)},
			{"layered-dense", LayeredEdges(9, n, 2, 1.0)},
			{"layered-sparse", LayeredEdges(11, n, 3, 0.0)},
		} {
			if err := sysmodel.ValidateEdges(tc.edges, n); err != nil {
				t.Errorf("n=%d %s: %v", n, tc.name, err)
			}
		}
	}
	if got := len(ChainEdges(5)); got != 4 {
		t.Errorf("chain(5): %d edges, want 4", got)
	}
	if got := len(ForkJoinEdges(5)); got != 6 {
		t.Errorf("fork-join(5): %d edges, want 6", got)
	}
}

func TestLayeredEdgesDeterministicAndConnected(t *testing.T) {
	a := LayeredEdges(42, 9, 3, 0.4)
	b := LayeredEdges(42, 9, 3, 0.4)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d edges", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// Every application outside the first layer has a predecessor even
	// at density 0.
	preds := sysmodel.Preds(LayeredEdges(3, 9, 3, 0), 9)
	for i := 3; i < 9; i++ {
		if len(preds[i]) == 0 {
			t.Errorf("application %d has no predecessor", i)
		}
	}
}

func TestDAGStudyDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("DAG study in -short")
	}
	cfg := DefaultDAGStudyConfig(5)
	cfg.Apps = 4
	cfg.Type1, cfg.Type2 = 4, 8
	cfg.Reps = 3
	cfg.Heuristics = []string{"greedy", "heft", "dag-greedy"}

	render := func(workers int) string {
		c := cfg
		c.Workers = workers
		tbl, err := RunDAGStudyContext(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tbl.CSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	one := render(1)
	many := render(4)
	if one != many {
		t.Errorf("DAG study differs across worker counts:\n%s\nvs\n%s", one, many)
	}
	if len(one) == 0 {
		t.Fatal("empty study output")
	}
}

package experiments

import (
	"context"
	"fmt"

	"cdsf/internal/availability"
	"cdsf/internal/core"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/robustness"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

// This file implements the sensitivity studies that back DESIGN.md's
// ablation list: how the reproduction's conclusions react to the
// simulator knobs the paper does not pin down (scheduling overhead,
// iteration variability, availability dynamics) and to the PMF
// granularity of Stage I.

// sensApp returns the paper's application 3 on its robust allocation
// (8 processors of type 2) — the batch's tightest deadline margin and
// therefore the most sensitive probe.
func sensApp() (app int, workers int, iterMean float64, avail pmf.PMF) {
	b := PaperBatch(DefaultPulses)
	a := b[2]
	return 2, 8, a.ExecTime[1].Mean() / float64(a.TotalIters()), availCase1Type2
}

func sensSim(tech dls.Technique, overhead, cv float64, model availability.Model, reps int, seed uint64) (*sim.Sample, error) {
	_, workers, iterMean, _ := sensApp()
	b := PaperBatch(DefaultPulses)
	return sim.RunManyContext(context.Background(), sim.Config{
		SerialIters:      b[2].SerialIters,
		ParallelIters:    b[2].ParallelIters,
		Workers:          workers,
		IterTime:         stats.NewNormal(iterMean, cv*iterMean),
		Avail:            model,
		Technique:        tech,
		WeightsFromAvail: true,
		BestMaster:       true,
		Overhead:         overhead,
		Seed:             seed,
	}, reps)
}

// GenerateOverheadSensitivity sweeps the per-chunk scheduling overhead
// for each Stage-II technique on the paper's application 3 and reports
// mean makespans — the overhead/imbalance tradeoff that separates SS
// from the batched techniques.
func GenerateOverheadSensitivity(seed uint64, reps int) (*report.Table, error) {
	overheads := []float64{0, 0.5, 1, 5, 20}
	headers := []string{"Technique"}
	for _, h := range overheads {
		headers = append(headers, fmt.Sprintf("h=%g", h))
	}
	t := report.NewTable("Overhead sensitivity: mean makespan of App 3 (robust allocation, case-1 availability)", headers...)
	_, _, _, avail := sensApp()
	model := availability.Markov{PMF: avail, Interval: Deadline / 4, Persistence: 0.5}
	for _, name := range []string{"SS", "GSS", "FAC", "WF", "AWF-B", "AF"} {
		tech, ok := dls.Get(name)
		if !ok {
			return nil, fmt.Errorf("experiments: technique %q missing", name)
		}
		row := []string{name}
		for _, h := range overheads {
			s, err := sensSim(tech, h, 0.3, model, reps, seed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", s.Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// GenerateCVSensitivity sweeps the per-iteration coefficient of
// variation — the paper's "uncertain input data" — for the robust
// technique set.
func GenerateCVSensitivity(seed uint64, reps int) (*report.Table, error) {
	cvs := []float64{0.05, 0.1, 0.3, 0.6, 1.0}
	headers := []string{"Technique"}
	for _, cv := range cvs {
		headers = append(headers, fmt.Sprintf("cv=%g", cv))
	}
	t := report.NewTable("Iteration-variability sensitivity: mean makespan of App 3", headers...)
	_, _, _, avail := sensApp()
	model := availability.Markov{PMF: avail, Interval: Deadline / 4, Persistence: 0.5}
	for _, tech := range dls.PaperRobustSet() {
		row := []string{tech.Name}
		for _, cv := range cvs {
			s, err := sensSim(tech, 1, cv, model, reps, seed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", s.Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// GenerateModelSensitivity compares availability-model families at the
// same marginal distribution: the same case-1 PMF driving static
// draws, periodic redraws, and Markov bursts of varying persistence.
func GenerateModelSensitivity(seed uint64, reps int) (*report.Table, error) {
	_, _, _, avail := sensApp()
	models := []availability.Model{
		availability.Static{PMF: avail},
		availability.Redraw{PMF: avail, Interval: Deadline / 4},
		availability.Markov{PMF: avail, Interval: Deadline / 4, Persistence: 0.25},
		availability.Markov{PMF: avail, Interval: Deadline / 4, Persistence: 0.5},
		availability.Markov{PMF: avail, Interval: Deadline / 4, Persistence: 0.9},
	}
	headers := []string{"Technique"}
	for _, m := range models {
		headers = append(headers, m.Name())
	}
	t := report.NewTable("Availability-model sensitivity: mean makespan of App 3 (same marginal PMF)", headers...)
	for _, tech := range dls.PaperRobustSet() {
		row := []string{tech.Name}
		for _, m := range models {
			s, err := sensSim(tech, 1, 0.3, m, reps, seed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0f", s.Mean()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// GenerateGranularitySensitivity reports phi_1 for both Table IV
// allocations as the execution-time PMF pulse count grows — the
// Stage-I quantization study.
func GenerateGranularitySensitivity() (*report.Table, error) {
	counts := []int{5, 10, 25, 50, 100, 250, 1000}
	headers := []string{"Allocation"}
	for _, c := range counts {
		headers = append(headers, fmt.Sprintf("%d pulses", c))
	}
	t := report.NewTable("PMF-granularity sensitivity: phi1 (%) vs pulse count", headers...)
	sys := ReferenceSystem()
	naive := []string{"naive IM"}
	robust := []string{"robust IM"}
	for _, c := range counts {
		batch := PaperBatch(c)
		pn, err := robustness.StageIProbability(sys, batch, PaperNaiveAllocation(), Deadline)
		if err != nil {
			return nil, err
		}
		pr, err := robustness.StageIProbability(sys, batch, PaperRobustAllocation(), Deadline)
		if err != nil {
			return nil, err
		}
		naive = append(naive, fmt.Sprintf("%.2f", pn*100))
		robust = append(robust, fmt.Sprintf("%.2f", pr*100))
	}
	t.AddRow(naive...)
	t.AddRow(robust...)
	return t, nil
}

// GenerateDeadlineCurve renders phi_1 of both Table IV allocations as a
// function of the deadline — the robustness curve behind the paper's
// single Delta = 3250 snapshot.
func GenerateDeadlineCurve() (*report.Table, error) {
	sys := ReferenceSystem()
	batch := PaperBatch(DefaultPulses)
	deadlines := []float64{2000, 2500, 2750, 3000, 3250, 3500, 4000, 5000, 8000, 12000}
	headers := []string{"Allocation"}
	for _, d := range deadlines {
		headers = append(headers, fmt.Sprintf("%.0f", d))
	}
	t := report.NewTable("Deadline sweep: phi1 (%) vs Delta", headers...)
	naiveCurve, err := robustness.DeadlineSweep(sys, batch, PaperNaiveAllocation(), deadlines)
	if err != nil {
		return nil, err
	}
	robustCurve, err := robustness.DeadlineSweep(sys, batch, PaperRobustAllocation(), deadlines)
	if err != nil {
		return nil, err
	}
	rowOf := func(name string, curve []robustness.CurvePoint) []string {
		row := []string{name}
		for _, p := range curve {
			row = append(row, fmt.Sprintf("%.1f", p.Value*100))
		}
		return row
	}
	t.AddRow(rowOf("naive IM", naiveCurve)...)
	t.AddRow(rowOf("robust IM", robustCurve)...)
	return t, nil
}

// GenerateToleranceCurve renders phi_1 of the robust allocation under
// uniformly scaled availability — the continuous Stage-II perturbation
// curve whose 74.5%-threshold crossing generalizes rho_2.
func GenerateToleranceCurve() (*report.Table, error) {
	sys := ReferenceSystem()
	batch := PaperBatch(DefaultPulses)
	scales := []float64{1, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.6, 0.5}
	curve, err := robustness.AvailabilityScalingCurve(sys, batch, PaperRobustAllocation(), Deadline, scales)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Availability-scaling curve: robust allocation",
		"Scale", "Weighted-availability decrease (%)", "phi1 (%)")
	for i, p := range curve {
		t.AddRow(
			fmt.Sprintf("%.2f", scales[i]),
			fmt.Sprintf("%.1f", p.X*100),
			fmt.Sprintf("%.2f", p.Value*100))
	}
	return t, nil
}

// RunExtendedTechniqueStudy evaluates every registered DLS technique
// (not just the paper's set) on the scenario-4 allocation across the
// four cases, reporting the number of (application, case) cells whose
// deadline each technique satisfies — the "which techniques would have
// sufficed" extension study.
func RunExtendedTechniqueStudy(seed uint64, reps int) (*report.Table, error) {
	f := Framework()
	cfg := core.DefaultStageII(Deadline, seed)
	cfg.Reps = reps
	sc := core.Scenario{Name: "extended", IM: paperRobustIM{}, RAS: dls.All()}
	res, err := f.RunScenarioContext(context.Background(), sc, Cases(), cfg)
	if err != nil {
		return nil, err
	}
	headers := []string{"Technique", "Cells met (of 12)", "Mean time (case 1..4 avg)"}
	t := report.NewTable("Extended technique study: scenario-4 allocation, all registered techniques", headers...)
	for ti, tech := range sc.RAS {
		met := 0
		sum := 0.0
		n := 0
		for _, c := range res.Cases {
			for _, outs := range c.PerApp {
				o := outs[ti]
				if o.Technique != tech.Name {
					return nil, fmt.Errorf("experiments: outcome order mismatch")
				}
				if o.Meets {
					met++
				}
				sum += o.MeanTime
				n++
			}
		}
		t.AddRow(tech.Name, fmt.Sprintf("%d", met), fmt.Sprintf("%.0f", sum/float64(n)))
	}
	return t, nil
}

// paperRobustIM is a Heuristic that returns the paper's Table IV robust
// allocation directly, pinning the extended study to the exact paper
// configuration.
type paperRobustIM struct{}

func (paperRobustIM) Name() string { return "paper-robust" }

func (paperRobustIM) Allocate(p *ra.Problem) (sysmodel.Allocation, error) {
	return PaperRobustAllocation(), nil
}

package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cdsf/internal/availability"
	"cdsf/internal/cache"
	"cdsf/internal/core"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/rng"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
	"cdsf/internal/tracing"
)

// This file implements the paper's closing future-work item: "a larger
// scale problem ... probabilistic studies will be performed on this
// larger problem to determine the benefit of the CDSF on a range of
// application and system parameters". RunScaleStudy draws many random
// instances, evaluates the four IM x RAS quadrants on each, and
// aggregates how often each quadrant satisfies the deadline — the 2x2
// hypothesis of Section IV established statistically instead of by a
// single example.

// SyntheticInstance generates a random CDSF instance: `apps`
// applications over a two-type system with the paper's reference
// availability PMFs. Mean execution times are drawn uniformly in
// [600, 4800] per type, serial fractions in [2%, 30%]. The deadline is
// calibrated per instance to `slack` times the best allocation's
// expected makespan found by the two-phase heuristic, so instances are
// comparably tight across sizes.
func SyntheticInstance(seed uint64, apps, type1, type2 int, slack float64) (*ra.Problem, error) {
	r := rng.New(seed)
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "Type 1", Count: type1, Avail: availCase1Type1},
		{Name: "Type 2", Count: type2, Avail: availCase1Type2},
	}}
	b := make(sysmodel.Batch, apps)
	for i := range b {
		total := 512 + r.Intn(4096)
		sf := 0.02 + 0.28*r.Float64()
		serial := int(sf * float64(total))
		if serial < 1 {
			serial = 1
		}
		exec := make([]pmf.PMF, 2)
		for j := range exec {
			mu := 600 * (1 + 7*r.Float64())
			exec[j] = pmf.Discretize(stats.NewNormal(mu, mu/10), 100)
		}
		b[i] = sysmodel.Application{
			Name:          fmt.Sprintf("App %d", i+1),
			SerialIters:   serial,
			ParallelIters: total - serial,
			ExecTime:      exec,
		}
	}
	// Calibrate the deadline with a provisional problem (deadline only
	// influences tie-breaking in the calibration allocation).
	prov := &ra.Problem{Sys: sys, Batch: b, Deadline: 1e12}
	al, err := (ra.TwoPhaseGreedy{}).Allocate(prov)
	if err != nil {
		return nil, err
	}
	maxExp := 0.0
	for i := range b {
		e := b[i].CompletionPMF(al[i].Type, al[i].Procs, sys.Types[al[i].Type].Avail).Mean()
		if e > maxExp {
			maxExp = e
		}
	}
	return &ra.Problem{Sys: sys, Batch: b, Deadline: slack * maxExp}, nil
}

// ScaleConfig parameterizes RunScaleStudy.
type ScaleConfig struct {
	// Instances is the number of random instances per size.
	Instances int
	// Sizes lists the (apps, type1, type2) triples to study.
	Sizes [][3]int
	// Slack calibrates deadline tightness (see SyntheticInstance);
	// 1.2 gives instances where naive policies routinely fail.
	Slack float64
	// RobustIM is the scalable Stage-I heuristic representing "robust"
	// (the exhaustive search is infeasible at these sizes).
	RobustIM ra.Heuristic
	// Scale degrades the runtime availability relative to Stage I's
	// expectation (A <= E[A-hat], per the paper's Stage-II assumption).
	Scale float64
	// Reps is the number of Stage-II repetitions per cell.
	Reps int
	// Seed drives instance generation and simulations.
	Seed uint64
	// Workers bounds the pool evaluating (size, quadrant, instance)
	// cells concurrently; non-positive means runtime.NumCPU(). Every
	// cell derives its randomness from Seed alone, so the study's output
	// is identical for any worker count.
	Workers int
	// Backend selects the PMF representation for every Stage-I search
	// in the study; the zero value is the exact sparse backend. The
	// grid backend makes the large instances' evaluation tables much
	// cheaper at a quantization error bounded in DESIGN.md.
	Backend pmf.Backend
	// Cache, when non-nil, is the content-addressed solve cache shared
	// by every cell's Stage-I and Stage-II work; the study's output is
	// bit-identical with it on or off.
	Cache *cache.Cache
}

// DefaultScaleConfig returns the configuration used by the repository's
// scale-study benchmark.
func DefaultScaleConfig(seed uint64) ScaleConfig {
	return ScaleConfig{
		Instances: 10,
		Sizes:     [][3]int{{3, 4, 8}, {6, 8, 16}, {10, 16, 32}},
		Slack:     1.5,
		RobustIM:  ra.TwoPhaseGreedy{},
		Scale:     0.8,
		Reps:      10,
		Seed:      seed,
	}
}

// quadrant identifies one IM x RAS combination.
type quadrant struct {
	name string
	im   ra.Heuristic
	ras  []string // technique names
}

// RunScaleStudyContext is RunScaleStudy under a context: cancellation
// stops the cell pool from claiming further (size, quadrant, instance)
// cells, drains in-flight evaluations (each of which also observes ctx
// through the Stage-I and Stage-II layers), and returns an error
// wrapping ctx.Err(). Uncancelled seeded studies are bit-identical to
// RunScaleStudy for any worker count.
func RunScaleStudyContext(ctx context.Context, cfg ScaleConfig) (*report.Table, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Instances <= 0 || cfg.Reps <= 0 || cfg.Slack <= 0 {
		return nil, fmt.Errorf("experiments: invalid scale config %+v", cfg)
	}
	if cfg.RobustIM == nil {
		cfg.RobustIM = ra.TwoPhaseGreedy{}
	}
	quadrants := []quadrant{
		{"naive IM + STATIC", ra.NaiveLoadBalance{}, []string{"STATIC"}},
		{"robust IM + STATIC", cfg.RobustIM, []string{"STATIC"}},
		{"naive IM + robust DLS", ra.NaiveLoadBalance{}, []string{"FAC", "WF", "AWF-B", "AF"}},
		{"robust IM + robust DLS", cfg.RobustIM, []string{"FAC", "WF", "AWF-B", "AF"}},
	}
	t := report.NewTable(
		fmt.Sprintf("Scale study: %d instances per size, runtime availability scaled to %.0f%%, deadline slack %.2f",
			cfg.Instances, cfg.Scale*100, cfg.Slack),
		"Size (apps x procs)", "Quadrant", "Mean phi1 (%)", "Batch met deadline (%)")
	// Flatten every (size, quadrant, instance) cell into one job list
	// and evaluate the cells across a worker pool. Each cell's seed is a
	// pure function of the config, and each worker writes only its own
	// result slot, so aggregation below sees identical inputs for any
	// worker count.
	type cell struct {
		size [3]int
		quad int
		inst int
	}
	type cellResult struct {
		phi float64
		met bool
		err error
	}
	var jobs []cell
	for _, size := range cfg.Sizes {
		for qi := range quadrants {
			for k := 0; k < cfg.Instances; k++ {
				jobs = append(jobs, cell{size: size, quad: qi, inst: k})
			}
		}
	}
	results := make([]cellResult, len(jobs))
	// Each (size, quadrant, instance) cell counts as one "case" on the
	// live progress board, so the -debug-addr /progress endpoint shows
	// how far a long scale study has advanced.
	prog := tracing.DefaultProgress()
	prog.PlanCases(len(jobs))
	if err := forEachParallel(ctx, cfg.Workers, len(jobs), func(i int) {
		defer prog.CaseDone()
		j := jobs[i]
		apps, t1, t2 := j.size[0], j.size[1], j.size[2]
		seed := cfg.Seed ^ uint64(j.inst)<<16 ^ uint64(apps)<<40
		prob, err := SyntheticInstance(seed, apps, t1, t2, cfg.Slack)
		if err != nil {
			results[i] = cellResult{err: err}
			return
		}
		prob.Backend = cfg.Backend
		prob.Cache = cfg.Cache
		ok, phi, err := evalQuadrant(ctx, prob, quadrants[j.quad], cfg, seed)
		results[i] = cellResult{phi: phi, met: ok, err: err}
	}); err != nil {
		return nil, fmt.Errorf("experiments: scale study canceled: %w", err)
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
	}
	// Aggregate sequentially in the original (size, quadrant) order.
	i := 0
	for _, size := range cfg.Sizes {
		apps, t1, t2 := size[0], size[1], size[2]
		for _, q := range quadrants {
			sumPhi, met := 0.0, 0
			for k := 0; k < cfg.Instances; k++ {
				r := results[i]
				i++
				sumPhi += r.phi
				if r.met {
					met++
				}
			}
			t.AddRow(
				fmt.Sprintf("%d x %d", apps, t1+t2),
				q.name,
				fmt.Sprintf("%.1f", sumPhi/float64(cfg.Instances)*100),
				fmt.Sprintf("%.0f", float64(met)/float64(cfg.Instances)*100))
		}
	}
	return t, nil
}

// forEachParallel runs fn(0..n-1) across a bounded worker pool (the
// experiments-layer twin of ra's internal helper). workers <= 1 runs
// inline; non-positive workers means runtime.NumCPU(). Cancellation
// stops workers from claiming further indices; the pool drains and the
// context's error is returned.
func forEachParallel(ctx context.Context, workers, n int, fn func(int)) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// evalQuadrant runs one quadrant on one instance: Stage I allocation,
// then per-application Stage-II simulation under degraded availability;
// the batch "meets" when every application has some technique whose
// mean completion time satisfies the deadline.
func evalQuadrant(ctx context.Context, prob *ra.Problem, q quadrant, cfg ScaleConfig, seed uint64) (bool, float64, error) {
	alloc, err := ra.SolveContext(ctx, q.im, prob)
	if err != nil {
		return false, 0, err
	}
	phi, err := prob.Objective(alloc)
	if err != nil {
		return false, 0, err
	}
	f := &core.Framework{Sys: prob.Sys, Batch: prob.Batch, Deadline: prob.Deadline}
	scaled := make([]pmf.PMF, len(prob.Sys.Types))
	for j, pt := range prob.Sys.Types {
		scaled[j] = pt.Avail.Scale(cfg.Scale)
	}
	simCfg := core.DefaultStageII(prob.Deadline, seed)
	simCfg.PMFBackend = cfg.Backend
	simCfg.Cache = cfg.Cache
	simCfg.Reps = cfg.Reps
	simCfg.Model = func(p pmf.PMF) availability.Model {
		return availability.Markov{PMF: p, Interval: prob.Deadline / 4, Persistence: 0.5}
	}
	ras, err := techSet(q.ras)
	if err != nil {
		return false, 0, err
	}
	sc := core.Scenario{Name: q.name, IM: fixedAlloc{alloc}, RAS: ras}
	res, err := f.RunScenarioContext(ctx, sc, []core.Case{{Name: "degraded", Avail: scaled}}, simCfg)
	if err != nil {
		return false, 0, err
	}
	return res.Cases[0].AllMeet, phi, nil
}

// fixedAlloc adapts a precomputed allocation to the Heuristic interface
// so the quadrant's Stage-I decision is not recomputed inside
// RunScenario.
type fixedAlloc struct{ al sysmodel.Allocation }

func (f fixedAlloc) Name() string { return "fixed" }
func (f fixedAlloc) Allocate(*ra.Problem) (sysmodel.Allocation, error) {
	return f.al, nil
}

// techSet resolves technique names from the registry.
func techSet(names []string) ([]dls.Technique, error) {
	out := make([]dls.Technique, len(names))
	for i, n := range names {
		t, ok := dls.Get(n)
		if !ok {
			return nil, fmt.Errorf("experiments: technique %q missing", n)
		}
		out[i] = t
	}
	return out, nil
}

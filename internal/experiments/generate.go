package experiments

import (
	"context"
	"fmt"

	"cdsf/internal/core"
	"cdsf/internal/ra"
	"cdsf/internal/report"
	"cdsf/internal/robustness"
)

// This file regenerates every table and figure of the paper's
// evaluation section as renderable reports. Each GenerateX function is
// wrapped by a benchmark in the repository root and by cmd/expgen.

// GenerateTableI reproduces Table I: per-case availability PMFs,
// expected availabilities, weighted system availability, and the
// bracketed decrease relative to the reference case.
func GenerateTableI() *report.Table {
	sys := ReferenceSystem()
	t := report.NewTable(
		"Table I: processor availabilities by type and weighted system availabilities",
		"Case", "Proc", "Availability (%)", "Probability (%)", "Expected avail (%)", "Weighted avail (%)", "Decrease (%)")
	for ci, c := range Cases() {
		pert := sys.WithAvailability(c.Avail)
		dec := "-"
		if ci > 0 {
			dec = fmt.Sprintf("%.2f", robustness.AvailabilityDecrease(sys, pert)*100)
		}
		for j, pt := range pert.Types {
			availStr, probStr := "", ""
			for i, pl := range pt.Avail.Pulses() {
				if i > 0 {
					availStr += "/"
					probStr += "/"
				}
				availStr += fmt.Sprintf("%.0f", pl.Value*100)
				probStr += fmt.Sprintf("%.0f", pl.Prob*100)
			}
			caseCell, weightCell, decCell := "", "", ""
			if j == 0 {
				caseCell = c.Name
				weightCell = fmt.Sprintf("%.2f", pert.WeightedAvailability()*100)
				decCell = dec
			}
			t.AddRow(caseCell, pt.Name, availStr, probStr,
				fmt.Sprintf("%.2f", pt.ExpectedAvail()*100), weightCell, decCell)
		}
	}
	return t
}

// GenerateTableII reproduces Table II: the batch's iteration counts and
// serial/parallel fractions.
func GenerateTableII() *report.Table {
	t := report.NewTable("Table II: characteristics of a batch of applications",
		"App", "# Serial iters", "# Parallel iters", "% Serial", "% Parallel")
	for _, a := range PaperBatch(DefaultPulses) {
		t.AddRow(a.Name,
			fmt.Sprintf("%d", a.SerialIters),
			fmt.Sprintf("%d", a.ParallelIters),
			fmt.Sprintf("%.0f", a.SerialFraction()*100),
			fmt.Sprintf("%.0f", a.ParallelFraction()*100))
	}
	return t
}

// GenerateTableIII reproduces Table III: mean single-processor
// execution times per application and processor type.
func GenerateTableIII() *report.Table {
	t := report.NewTable("Table III: mean single-processor execution times",
		"Processor", AppNames[0], AppNames[1], AppNames[2])
	for j := 0; j < 2; j++ {
		row := []string{fmt.Sprintf("Type %d", j+1)}
		for i := 0; i < 3; i++ {
			row = append(row, fmt.Sprintf("%.0f", meanTimes[i][j]))
		}
		t.AddRow(row...)
	}
	return t
}

// TableIVResult carries the Table IV allocations plus their phi_1.
type TableIVResult struct {
	Naive, Robust  *robustness.StageIResult
	NaiveMatches   bool
	RobustMatches  bool
	NaiveExpected  string
	RobustExpected string
}

// ComputeTableIV runs the naive load balancer and exhaustive search on
// the paper instance and evaluates both allocations.
func ComputeTableIV() (*TableIVResult, error) {
	return ComputeTableIVContext(context.Background())
}

// ComputeTableIVContext is ComputeTableIV under a context; the
// exhaustive Stage-I search honors cancellation.
func ComputeTableIVContext(ctx context.Context) (*TableIVResult, error) {
	f := Framework()
	prob := &ra.Problem{Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline}
	naiveAl, err := ra.SolveContext(ctx, ra.NaiveLoadBalance{}, prob)
	if err != nil {
		return nil, err
	}
	robustAl, err := ra.SolveContext(ctx, &ra.Exhaustive{}, prob)
	if err != nil {
		return nil, err
	}
	naive, err := robustness.EvaluateStageI(f.Sys, f.Batch, naiveAl, f.Deadline)
	if err != nil {
		return nil, err
	}
	robust, err := robustness.EvaluateStageI(f.Sys, f.Batch, robustAl, f.Deadline)
	if err != nil {
		return nil, err
	}
	return &TableIVResult{
		Naive:          naive,
		Robust:         robust,
		NaiveMatches:   naiveAl.Equal(PaperNaiveAllocation()),
		RobustMatches:  robustAl.Equal(PaperRobustAllocation()),
		NaiveExpected:  PaperNaiveAllocation().String(),
		RobustExpected: PaperRobustAllocation().String(),
	}, nil
}

// GenerateTableIV reproduces Table IV: the naive and robust IM
// allocations with their joint deadline probabilities.
func GenerateTableIV() (*report.Table, error) {
	return GenerateTableIVContext(context.Background())
}

// GenerateTableIVContext is GenerateTableIV under a context.
func GenerateTableIVContext(ctx context.Context) (*report.Table, error) {
	res, err := ComputeTableIVContext(ctx)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table IV: resource allocation for naive and robust IM",
		"RA", "App", "Proc type", "# Procs", "phi1 (%)", "Matches paper")
	for row, r := range []*robustness.StageIResult{res.Naive, res.Robust} {
		name := "naive IM"
		match := res.NaiveMatches
		if row == 1 {
			name = "robust IM"
			match = res.RobustMatches
		}
		for i, as := range r.Alloc {
			nameCell, phiCell, matchCell := "", "", ""
			if i == 0 {
				nameCell = name
				phiCell = fmt.Sprintf("%.1f", r.Phi1*100)
				matchCell = fmt.Sprintf("%v", match)
			}
			t.AddRow(nameCell, AppNames[i], fmt.Sprintf("%d", as.Type+1),
				fmt.Sprintf("%d", as.Procs), phiCell, matchCell)
		}
	}
	return t, nil
}

// GenerateTableV reproduces Table V: the expected parallel completion
// times for both allocations, alongside the paper's values.
func GenerateTableV() (*report.Table, error) {
	return GenerateTableVContext(context.Background())
}

// GenerateTableVContext is GenerateTableV under a context.
func GenerateTableVContext(ctx context.Context) (*report.Table, error) {
	res, err := ComputeTableIVContext(ctx)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table V: expected application completion times (time units)",
		"RA", AppNames[0], AppNames[1], AppNames[2], "Paper values")
	t.AddRow("naive IM",
		fmt.Sprintf("%.2f", res.Naive.ExpectedTimes[0]),
		fmt.Sprintf("%.2f", res.Naive.ExpectedTimes[1]),
		fmt.Sprintf("%.2f", res.Naive.ExpectedTimes[2]),
		fmt.Sprintf("%.2f / %.2f / %.2f", PaperTableV[0][0], PaperTableV[0][1], PaperTableV[0][2]))
	t.AddRow("robust IM",
		fmt.Sprintf("%.2f", res.Robust.ExpectedTimes[0]),
		fmt.Sprintf("%.2f", res.Robust.ExpectedTimes[1]),
		fmt.Sprintf("%.2f", res.Robust.ExpectedTimes[2]),
		fmt.Sprintf("%.2f / %.2f / %.2f", PaperTableV[1][0], PaperTableV[1][1], PaperTableV[1][2]))
	return t, nil
}

// scenarioByNumber returns the paper scenario (1-4).
func scenarioByNumber(n int) core.Scenario {
	scs := core.PaperScenarios(ra.NaiveLoadBalance{}, ra.Exhaustive{})
	return scs[n-1]
}

// RunPaperScenario evaluates paper scenario n (1-4) with the default
// calibrated Stage-II configuration and the given seed.
func RunPaperScenario(n int, seed uint64) (*core.ScenarioResult, error) {
	return RunPaperScenarioContext(context.Background(), n, seed)
}

// RunPaperScenarioContext is RunPaperScenario under a context; ctx
// reaches the Stage-I search and every Stage-II replication fan-out.
func RunPaperScenarioContext(ctx context.Context, n int, seed uint64) (*core.ScenarioResult, error) {
	if n < 1 || n > 4 {
		return nil, fmt.Errorf("experiments: scenario %d out of 1..4", n)
	}
	f := Framework()
	cfg := core.DefaultStageII(Deadline, seed)
	return f.RunScenarioContext(ctx, scenarioByNumber(n), Cases(), cfg)
}

// GenerateFigure renders paper figure n (3-6 correspond to scenarios
// 1-4): per-case, per-application, per-technique mean execution times as
// a bar chart against the deadline.
func GenerateFigure(n int, seed uint64) (*report.BarChart, error) {
	return GenerateFigureContext(context.Background(), n, seed)
}

// GenerateFigureContext is GenerateFigure under a context.
func GenerateFigureContext(ctx context.Context, n int, seed uint64) (*report.BarChart, error) {
	if n < 3 || n > 6 {
		return nil, fmt.Errorf("experiments: figure %d out of 3..6", n)
	}
	res, err := RunPaperScenarioContext(ctx, n-2, seed)
	if err != nil {
		return nil, err
	}
	c := report.NewBarChart(fmt.Sprintf("Figure %d: scenario %s — application execution times", n, res.Scenario))
	c.RefLabel = "deadline"
	c.RefValue = Deadline
	for _, cs := range res.Cases {
		for i, outs := range cs.PerApp {
			c.Gap()
			for _, o := range outs {
				marker := ""
				if !o.Meets {
					marker = "  (!)"
				}
				c.Add(fmt.Sprintf("%s %s %s", cs.Case.Name, AppNames[i], o.Technique), o.MeanTime, marker)
			}
		}
	}
	return c, nil
}

// GenerateTableVI reproduces Table VI from scenario 4: the best
// deadline-meeting DLS technique per application and case, plus the
// resulting robustness tuple.
func GenerateTableVI(seed uint64) (*report.Table, robustness.Tuple, error) {
	return GenerateTableVIContext(context.Background(), seed)
}

// GenerateTableVIContext is GenerateTableVI under a context.
func GenerateTableVIContext(ctx context.Context, seed uint64) (*report.Table, robustness.Tuple, error) {
	res, err := RunPaperScenarioContext(ctx, 4, seed)
	if err != nil {
		return nil, robustness.Tuple{}, err
	}
	t := report.NewTable("Table VI: best DLS technique meeting the deadline (scenario 4)",
		"Application", "Case 1", "Case 2", "Case 3", "Case 4", "Paper")
	for i := 0; i < 3; i++ {
		row := []string{AppNames[i]}
		for ci := 0; ci < 4; ci++ {
			b := res.Cases[ci].Best[i]
			if b == "" {
				b = "-"
			}
			row = append(row, b)
		}
		paper := ""
		for ci := 0; ci < 4; ci++ {
			if ci > 0 {
				paper += "/"
			}
			if PaperTableVI[i][ci] == "" {
				paper += "-"
			} else {
				paper += PaperTableVI[i][ci]
			}
		}
		row = append(row, paper)
		t.AddRow(row...)
	}
	return t, core.SystemRobustness(res), nil
}

package experiments

import (
	"testing"

	"cdsf/internal/ra"
)

// TestPaperTableIV verifies that the naive load-balancing policy and the
// exhaustive search reproduce the paper's Table IV allocations.
func TestPaperTableIV(t *testing.T) {
	f := Framework()
	prob := &ra.Problem{Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline}

	naive, err := ra.NaiveLoadBalance{}.Allocate(prob)
	if err != nil {
		t.Fatal(err)
	}
	if want := PaperNaiveAllocation(); !naive.Equal(want) {
		t.Errorf("naive IM allocation = %v, want %v", naive, want)
	}

	robust, err := ra.Exhaustive{}.Allocate(prob)
	if err != nil {
		t.Fatal(err)
	}
	if want := PaperRobustAllocation(); !robust.Equal(want) {
		t.Errorf("robust IM allocation = %v, want %v", robust, want)
	}
}

// TestHeuristicsFeasibleAndCompetitive checks every registered heuristic
// returns a feasible allocation on the paper instance and that none
// beats the exhaustive optimum.
func TestHeuristicsFeasibleAndCompetitive(t *testing.T) {
	f := Framework()
	prob := &ra.Problem{Sys: f.Sys, Batch: f.Batch, Deadline: f.Deadline}
	opt, err := prob.Objective(PaperRobustAllocation())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range ra.Names() {
		h, ok := ra.Get(name)
		if !ok {
			t.Fatalf("heuristic %q not found", name)
		}
		al, err := h.Allocate(prob)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := al.Validate(f.Sys, f.Batch); err != nil {
			t.Errorf("%s: infeasible allocation: %v", name, err)
			continue
		}
		phi, err := prob.Objective(al)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if phi > opt+1e-9 {
			t.Errorf("%s: phi1 %v exceeds exhaustive optimum %v", name, phi, opt)
		}
		t.Logf("%-10s phi1=%.4f alloc=%v", name, phi, al)
	}
}

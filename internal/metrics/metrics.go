// Package metrics is the zero-dependency observability layer of the
// CDSF reproduction: atomic counters, gauges, timers, and fixed-bucket
// histograms collected into a Registry that is safe under the worker
// pools of the Stage-I search engine and the Stage-II replicator.
//
// The layer is built for hot paths. Every primitive has a nil-receiver
// no-op fast path, so instrumented code holds plain pointers and pays
// one predictable nil check when metrics are disabled:
//
//	var c *metrics.Counter // nil: disabled
//	c.Add(1)               // no-op, no allocation, no branch misses
//
// Instrumentation never draws from the simulation rng streams and never
// reorders events, so seeded runs are bit-identical with metrics on or
// off — the determinism tests in internal/sim assert exactly that.
//
// Only the standard library is used.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. It is a no-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. It is a no-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 accumulator for quantities that are summed
// rather than counted (simulated busy time, idle time, ...). The zero
// value is ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Add folds v into the gauge with a compare-and-swap loop. It is a
// no-op on a nil receiver.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Set replaces the gauge value. It is a no-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates wall-clock durations. The zero value is ready to
// use; a nil *Timer is a no-op.
type Timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Observe folds one duration into the timer. It is a no-op on a nil
// receiver.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.count.Add(1)
	t.nanos.Add(int64(d))
}

// Since observes the duration elapsed since t0, for the common
// `defer tm.Since(time.Now())` pattern. It is a no-op on a nil receiver.
func (t *Timer) Since(t0 time.Time) { t.Observe(time.Since(t0)) }

// Count returns the number of observations (0 for a nil receiver).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.count.Load()
}

// Total returns the accumulated duration (0 for a nil receiver).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.nanos.Load())
}

// Histogram counts observations into fixed buckets with inclusive upper
// bounds; values above the last bound land in an implicit +Inf bucket.
// Observations are a binary search plus one atomic add — no allocation.
// A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []int64   // len(bounds)+1; last is the overflow bucket
}

// newHistogram validates bounds (ascending, finite, non-empty) and
// builds the bucket array.
func newHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram with no bounds")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("metrics: histogram bound %v", b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: histogram bounds not ascending at %d", i)
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}, nil
}

// Observe counts v into its bucket. NaN observations are dropped. It is
// a no-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: inclusive upper bounds
	atomic.AddInt64(&h.counts[i], 1)
}

// Count returns the total number of observations (0 for a nil
// receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	n := int64(0)
	for i := range h.counts {
		n += atomic.LoadInt64(&h.counts[i])
	}
	return n
}

// Bounds returns a copy of the bucket upper bounds (nil for a nil
// receiver).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// bucketCounts returns an atomic snapshot copy of the per-bucket counts.
func (h *Histogram) bucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = atomic.LoadInt64(&h.counts[i])
	}
	return out
}

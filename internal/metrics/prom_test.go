package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"sim.runs":            "sim_runs",
		"trace.worker00.busy": "trace_worker00_busy",
		"9lives":              "_lives",
		"a:b_c9":              "a:b_c9",
		"häx":                 "h_x",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// The golden file pins the full exposition: family ordering (counters,
// gauges, timers, histograms), name sorting within each, sanitized
// names, and cumulative histogram buckets.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.runs").Add(42)
	r.Counter("tracing.dropped").Add(3)
	r.Gauge("trace.fac.busy_efficiency").Set(0.875)
	r.Gauge("pmf.cache.ratio").Set(0.5)
	r.Timer("stage1.allocate").Observe(1500 * time.Millisecond)
	r.Timer("stage1.allocate").Observe(500 * time.Millisecond)
	h := r.Histogram("sim.makespan", []float64{100, 1000})
	h.Observe(50)
	h.Observe(150)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("z").Set(1)
	var a, b bytes.Buffer
	snap := r.Snapshot()
	if err := snap.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two expositions of one snapshot differ")
	}
}

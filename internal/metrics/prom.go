package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// This file emits a snapshot in the Prometheus text exposition format
// (version 0.0.4), so the /metrics?format=prom debug endpoint and the
// CLIs' -metrics flag can feed standard scrapers. Output is fully
// deterministic: families are written counters, gauges, timers,
// histograms, each in sorted name order.
//
// Mapping: counters and gauges keep their value; timers become
// summaries named <name>_seconds with _count and _sum samples;
// histograms become Prometheus histograms with cumulative _bucket
// samples (our buckets store per-bucket counts) plus _count.

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*; dots and any other invalid runes collapse
// to underscores.
func promName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a sample value; Prometheus accepts Go's shortest
// 'g' representation plus +Inf/-Inf/NaN spellings.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format, deterministically sorted within each metric family kind.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Timers) {
		t := s.Timers[name]
		n := promName(name) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n%s_count %d\n%s_sum %s\n",
			n, n, t.Count, n, promFloat(t.TotalSeconds)); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(b.LE), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. Lookups take a mutex (call them at
// setup time and cache the returned pointers in hot loops); updates on
// the returned primitives are lock-free atomics, so one Registry may be
// shared by any number of goroutines. A nil *Registry is a no-op: every
// lookup returns a nil primitive, whose methods are themselves no-ops —
// the disabled path instrumented code rides on.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		timers:     map[string]*Timer{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns nil (a no-op counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use. A nil
// registry returns nil.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it with the given
// inclusive upper bounds on first use (later calls return the existing
// histogram and ignore bounds). A nil registry, or invalid bounds on
// first use, returns nil.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		var err error
		h, err = newHistogram(bounds)
		if err != nil {
			return nil
		}
		r.histograms[name] = h
	}
	return h
}

// Merge folds every metric of src into r, adding counts and values and
// summing histogram buckets by name. Metrics absent from r are created.
// Merging a set of per-worker registries into one in a fixed order
// yields a deterministic aggregate (all folds are additions, so any
// order gives the same totals). It returns an error when a histogram
// exists in both registries with different bounds; src is never
// modified. A nil r or src is a no-op.
func (r *Registry) Merge(src *Registry) error {
	if r == nil || src == nil {
		return nil
	}
	snap := src.Snapshot()
	for _, kv := range sortedKeys(snap.Counters) {
		r.Counter(kv).Add(snap.Counters[kv])
	}
	for _, kv := range sortedKeys(snap.Gauges) {
		r.Gauge(kv).Add(snap.Gauges[kv])
	}
	for name, ts := range snap.Timers {
		t := r.Timer(name)
		t.count.Add(ts.Count)
		t.nanos.Add(int64(ts.total))
	}
	for name, hs := range snap.Histograms {
		h := r.Histogram(name, hs.bounds)
		if h == nil {
			return fmt.Errorf("metrics: merge of histogram %q with invalid bounds", name)
		}
		if len(h.bounds) != len(hs.bounds) {
			return fmt.Errorf("metrics: merge of histogram %q with mismatched bounds", name)
		}
		for i, b := range h.bounds {
			if b != hs.bounds[i] {
				return fmt.Errorf("metrics: merge of histogram %q with mismatched bounds", name)
			}
		}
		for i, c := range hs.counts {
			atomic.AddInt64(&h.counts[i], c)
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TimerStats is one timer's snapshot.
type TimerStats struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`

	total time.Duration
}

// Bucket is one histogram bucket: the count of observations at or below
// LE (the last bucket's LE is +Inf, serialized as "+Inf").
type Bucket struct {
	LE    float64 `json:"-"`
	Count int64   `json:"count"`
}

// MarshalJSON emits {"le": <bound or "+Inf">, "count": n}.
func (b Bucket) MarshalJSON() ([]byte, error) {
	if !math.IsInf(b.LE, 1) {
		return json.Marshal(struct {
			LE    float64 `json:"le"`
			Count int64   `json:"count"`
		}{b.LE, b.Count})
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}{"+Inf", b.Count})
}

// HistogramStats is one histogram's snapshot.
type HistogramStats struct {
	Count   int64    `json:"count"`
	Buckets []Bucket `json:"buckets"`

	bounds []float64
	counts []int64
}

// Snapshot is a point-in-time copy of a registry, with deterministic
// ordering: encoding/json sorts map keys, and the CSV writer emits rows
// in sorted (kind, name) order, so two snapshots of equal registries
// serialize identically.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Timers     map[string]TimerStats     `json:"timers"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Snapshot copies the registry's current values. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Timers:     map[string]TimerStats{},
		Histograms: map[string]HistogramStats{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, t := range r.timers {
		n, tot := t.Count(), t.Total()
		ts := TimerStats{Count: n, TotalSeconds: tot.Seconds(), total: tot}
		if n > 0 {
			ts.MeanSeconds = tot.Seconds() / float64(n)
		}
		s.Timers[name] = ts
	}
	for name, h := range r.histograms {
		counts := h.bucketCounts()
		hs := HistogramStats{bounds: h.Bounds(), counts: counts}
		for i, c := range counts {
			le := math.Inf(1)
			if i < len(h.bounds) {
				le = h.bounds[i]
			}
			hs.Buckets = append(hs.Buckets, Bucket{LE: le, Count: c})
			hs.Count += c
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as `kind,name,field,value` rows in
// sorted order.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "kind,name,field,value\n"); err != nil {
		return err
	}
	row := func(kind, name, field string, value any) error {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%v\n", kind, csvEscape(name), field, value)
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := row("counter", name, "value", s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := row("gauge", name, "value", s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Timers) {
		t := s.Timers[name]
		if err := row("timer", name, "count", t.Count); err != nil {
			return err
		}
		if err := row("timer", name, "total_seconds", t.TotalSeconds); err != nil {
			return err
		}
		if err := row("timer", name, "mean_seconds", t.MeanSeconds); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if err := row("histogram", name, "count", h.Count); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.LE, 1) {
				le = fmt.Sprintf("%g", b.LE)
			}
			if err := row("histogram", name, "le="+le, b.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// csvEscape quotes a field containing commas or quotes.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteTo emits the registry to a destination as the CLIs' -metrics
// flag understands it:
//
//	""            no-op
//	"-", "json"   JSON to stdout
//	"csv"         CSV to stdout
//	"<path>.csv"  CSV file
//	"<path>"      JSON file
//
// A nil registry with a non-empty destination emits an empty snapshot.
func WriteTo(r *Registry, dest string) error {
	switch dest {
	case "":
		return nil
	case "-", "json":
		return r.Snapshot().WriteJSON(os.Stdout)
	case "csv":
		return r.Snapshot().WriteCSV(os.Stdout)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	snap := r.Snapshot()
	if strings.HasSuffix(dest, ".csv") {
		err = snap.WriteCSV(f)
	} else {
		err = snap.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// defaultRegistry is the process-wide fallback registry; see SetDefault.
var defaultRegistry atomic.Pointer[Registry]

// SetDefault installs reg as the process-wide default registry, the
// fallback instrumented packages use when no registry was wired through
// their configs (sim.Config.Metrics, ra.Problem.Metrics, ...). The CLIs
// call it once at startup when -metrics is given; passing nil disables
// the fallback. Libraries and tests should prefer explicit wiring.
func SetDefault(reg *Registry) { defaultRegistry.Store(reg) }

// Default returns the registry installed by SetDefault, or nil. The
// load is a single atomic read, cheap enough for once-per-run checks on
// hot paths.
func Default() *Registry { return defaultRegistry.Load() }

package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilPrimitivesAreNoOps(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Add(1.5)
	g.Set(2)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %v", g.Value())
	}
	var tm *Timer
	tm.Observe(time.Second)
	tm.Since(time.Now())
	if tm.Count() != 0 || tm.Total() != 0 {
		t.Errorf("nil timer = %d/%v", tm.Count(), tm.Total())
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Bounds() != nil {
		t.Errorf("nil histogram = %d/%v", h.Count(), h.Bounds())
	}
}

func TestNilRegistryLookups(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Timer("x") != nil ||
		r.Histogram("x", []float64{1}) != nil {
		t.Error("nil registry returned a live primitive")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Timers)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	if err := r.Merge(NewRegistry()); err != nil {
		t.Errorf("nil merge: %v", err)
	}
}

func TestCounterGaugeTimerHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("c") != c {
		t.Error("counter lookup not idempotent")
	}
	g := r.Gauge("g")
	g.Add(1.5)
	g.Add(2.5)
	if g.Value() != 4 {
		t.Errorf("gauge = %v", g.Value())
	}
	g.Set(1)
	if g.Value() != 1 {
		t.Errorf("gauge after set = %v", g.Value())
	}
	tm := r.Timer("t")
	tm.Observe(2 * time.Second)
	tm.Observe(4 * time.Second)
	if tm.Count() != 2 || tm.Total() != 6*time.Second {
		t.Errorf("timer = %d/%v", tm.Count(), tm.Total())
	}
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("histogram count = %d", h.Count())
	}
	got := h.bucketCounts()
	want := []int64{2, 1, 1, 1} // <=1: {0.5, 1}, <=2: {1.5}, <=4: {3}, +Inf: {100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
}

func TestHistogramInvalidBounds(t *testing.T) {
	r := NewRegistry()
	if r.Histogram("bad1", nil) != nil {
		t.Error("empty bounds accepted")
	}
	if r.Histogram("bad2", []float64{2, 1}) != nil {
		t.Error("descending bounds accepted")
	}
	if r.Histogram("bad3", []float64{1, math.Inf(1)}) != nil {
		t.Error("infinite bound accepted")
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines;
// run under -race this is the layer's thread-safety gate.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			g := r.Gauge("gauge")
			h := r.Histogram("hist", []float64{0.5})
			tm := r.Timer("timer")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.9)
				tm.Observe(time.Microsecond)
				r.Counter("lookup").Inc() // exercise the locked path too
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("gauge").Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("hist", nil).Count(); got != workers*iters {
		t.Errorf("histogram = %d, want %d", got, workers*iters)
	}
	if got := r.Timer("timer").Count(); got != workers*iters {
		t.Errorf("timer = %d, want %d", got, workers*iters)
	}
}

func TestMergeDeterministic(t *testing.T) {
	build := func(n int64) *Registry {
		r := NewRegistry()
		r.Counter("c").Add(n)
		r.Gauge("g").Add(float64(n) / 2)
		r.Timer("t").Observe(time.Duration(n))
		h := r.Histogram("h", []float64{1, 2})
		h.Observe(0.5)
		h.Observe(float64(n))
		return r
	}
	// Merging per-worker registries in any order yields the same totals.
	aggAB, aggBA := NewRegistry(), NewRegistry()
	a, b := build(3), build(5)
	for _, m := range []*Registry{a, b} {
		if err := aggAB.Merge(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []*Registry{b, a} {
		if err := aggBA.Merge(m); err != nil {
			t.Fatal(err)
		}
	}
	var bufAB, bufBA bytes.Buffer
	if err := aggAB.Snapshot().WriteJSON(&bufAB); err != nil {
		t.Fatal(err)
	}
	if err := aggBA.Snapshot().WriteJSON(&bufBA); err != nil {
		t.Fatal(err)
	}
	if bufAB.String() != bufBA.String() {
		t.Errorf("merge order changed the aggregate:\n%s\nvs\n%s", bufAB.String(), bufBA.String())
	}
	if got := aggAB.Counter("c").Value(); got != 8 {
		t.Errorf("merged counter = %d", got)
	}
	if got := aggAB.Gauge("g").Value(); got != 4 {
		t.Errorf("merged gauge = %v", got)
	}
	if got := aggAB.Timer("t").Total(); got != 8 {
		t.Errorf("merged timer total = %v", got)
	}
	if got := aggAB.Histogram("h", nil).Count(); got != 4 {
		t.Errorf("merged histogram count = %d", got)
	}

	// Mismatched bounds are rejected.
	bad := NewRegistry()
	bad.Histogram("h", []float64{9}).Observe(1)
	if err := aggAB.Merge(bad); err == nil {
		t.Error("mismatched histogram bounds merged")
	}
}

func TestSnapshotJSONValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim.chunks").Add(42)
	r.Gauge("sim.busy_time").Add(1.25)
	r.Timer("sim.run_wall").Observe(10 * time.Millisecond)
	r.Histogram("sim.worker_utilization", []float64{0.5, 1}).Observe(0.7)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"counters", "gauges", "timers", "histograms"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("missing %q section", key)
		}
	}
	if !strings.Contains(buf.String(), `"+Inf"`) {
		t.Error("overflow bucket not serialized")
	}
}

func TestSnapshotCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("name,with\"odd").Set(3)
	r.Histogram("h", []float64{1}).Observe(0.5)
	r.Timer("t").Observe(time.Second)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "kind,name,field,value" {
		t.Errorf("header = %q", lines[0])
	}
	// Counters come first, sorted by name.
	if lines[1] != "counter,a,value,1" || lines[2] != "counter,b,value,2" {
		t.Errorf("counter rows = %q, %q", lines[1], lines[2])
	}
	if !strings.Contains(buf.String(), `"name,with""odd"`) {
		t.Errorf("CSV escaping missing:\n%s", buf.String())
	}
}

func TestWriteToFiles(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	dir := t.TempDir()
	jsonPath := dir + "/m.json"
	csvPath := dir + "/m.csv"
	if err := WriteTo(r, jsonPath); err != nil {
		t.Fatal(err)
	}
	if err := WriteTo(r, csvPath); err != nil {
		t.Fatal(err)
	}
	if err := WriteTo(r, ""); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("JSON file invalid: %v", err)
	}
	if decoded.Counters["x"] != 1 {
		t.Errorf("counter in file = %d", decoded.Counters["x"])
	}
	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvData), "kind,name,field,value\n") {
		t.Errorf("CSV file = %q", string(csvData))
	}
}

func TestDefaultRegistry(t *testing.T) {
	if Default() != nil {
		t.Fatal("default registry set before test")
	}
	r := NewRegistry()
	SetDefault(r)
	defer SetDefault(nil)
	if Default() != r {
		t.Error("SetDefault not observed")
	}
}

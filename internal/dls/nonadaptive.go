package dls

import (
	"math"
)

// This file implements the non-adaptive, deterministic chunk rules:
// STATIC, SS, FSC, GSS, and TSS.

func init() {
	register(Technique{Name: "STATIC", New: newStatic})
	register(Technique{Name: "SS", New: newSS})
	register(Technique{Name: "FSC", New: newFSC})
	register(Technique{Name: "GSS", New: newGSS})
	register(Technique{Name: "TSS", New: newTSS})
}

// static implements straightforward parallelization: each worker
// receives one chunk of ceil(N/P) iterations (the paper's naive RAS
// policy, "STATIC").
type static struct {
	remaining int
	chunk     int
	served    []bool
}

func newStatic(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &static{
		remaining: s.Iterations,
		chunk:     maxInt(ceilDiv(s.Iterations, s.Workers), s.MinChunk),
		served:    make([]bool, s.Workers),
	}, nil
}

func (st *static) Name() string   { return "STATIC" }
func (st *static) Remaining() int { return st.remaining }

func (st *static) Next(w int) int {
	if st.served[w] {
		// Each worker gets exactly one share; an early finisher cannot
		// steal under STATIC — that is precisely its non-robustness.
		return 0
	}
	st.served[w] = true
	k := clampChunk(st.chunk, st.remaining)
	st.remaining -= k
	return k
}

func (st *static) Report(int, int, float64) {}

// ss implements pure self-scheduling: one iteration per request.
// Perfect balance, maximal overhead.
type ss struct {
	remaining int
	minChunk  int
}

func newSS(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &ss{remaining: s.Iterations, minChunk: s.MinChunk}, nil
}

func (s *ss) Name() string   { return "SS" }
func (s *ss) Remaining() int { return s.remaining }

func (s *ss) Next(int) int {
	k := floorChunk(1, s.minChunk, s.remaining)
	s.remaining -= k
	return k
}

func (s *ss) Report(int, int, float64) {}

// fsc implements fixed-size chunking (Kruskal & Weiss): the optimal
// fixed chunk size balancing overhead against imbalance,
//
//	k = (sqrt(2)*N*h / (sigma*P*sqrt(ln P)))^(2/3)
//
// computed from the a-priori iteration standard deviation sigma and the
// scheduling overhead h. With sigma or h unknown (zero), it degrades to
// N/(2P), a common practical fallback.
type fsc struct {
	remaining int
	chunk     int
}

func newFSC(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	n, p := float64(s.Iterations), float64(s.Workers)
	chunk := 0
	if s.IterStdDev > 0 && s.Overhead > 0 && s.Workers > 1 {
		k := math.Pow(math.Sqrt2*n*s.Overhead/(s.IterStdDev*p*math.Sqrt(math.Log(p))), 2.0/3.0)
		chunk = int(math.Ceil(k))
	} else {
		chunk = ceilDiv(s.Iterations, 2*s.Workers)
	}
	if chunk < 1 {
		chunk = 1
	}
	return &fsc{remaining: s.Iterations, chunk: maxInt(chunk, s.MinChunk)}, nil
}

func (f *fsc) Name() string   { return "FSC" }
func (f *fsc) Remaining() int { return f.remaining }

func (f *fsc) Next(int) int {
	k := clampChunk(f.chunk, f.remaining)
	f.remaining -= k
	return k
}

func (f *fsc) Report(int, int, float64) {}

// gss implements guided self-scheduling (Polychronopoulos & Kuck): each
// chunk is ceil(R/P) of the remaining iterations, producing
// exponentially decreasing chunk sizes.
type gss struct {
	remaining int
	workers   int
	minChunk  int
}

func newGSS(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &gss{remaining: s.Iterations, workers: s.Workers, minChunk: s.MinChunk}, nil
}

func (g *gss) Name() string   { return "GSS" }
func (g *gss) Remaining() int { return g.remaining }

func (g *gss) Next(int) int {
	k := floorChunk(ceilDiv(g.remaining, g.workers), g.minChunk, g.remaining)
	g.remaining -= k
	return k
}

func (g *gss) Report(int, int, float64) {}

// tss implements trapezoid self-scheduling (Tzen & Ni): chunk sizes
// decrease linearly from f = N/(2P) to l = 1 in steps of
// (f-l)/(C-1), with C = ceil(2N/(f+l)) chunks in total.
type tss struct {
	remaining int
	next      float64
	delta     float64
	minChunk  int
}

func newTSS(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	first := float64(s.Iterations) / float64(2*s.Workers)
	if first < 1 {
		first = 1
	}
	const last = 1.0
	c := math.Ceil(2 * float64(s.Iterations) / (first + last))
	delta := 0.0
	if c > 1 {
		delta = (first - last) / (c - 1)
	}
	return &tss{remaining: s.Iterations, next: first, delta: delta, minChunk: s.MinChunk}, nil
}

func (t *tss) Name() string   { return "TSS" }
func (t *tss) Remaining() int { return t.remaining }

func (t *tss) Next(int) int {
	k := floorChunk(int(math.Round(t.next)), t.minChunk, t.remaining)
	t.remaining -= k
	t.next -= t.delta
	if t.next < 1 {
		t.next = 1
	}
	return k
}

func (t *tss) Report(int, int, float64) {}

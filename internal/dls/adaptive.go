package dls

import (
	"math"
)

// This file implements the adaptive techniques AWF-B, AWF-C, and AF.
//
// AWF (adaptive weighted factoring, Carino & Banicescu) keeps weighted
// factoring's batch structure but learns the worker weights at runtime
// from measured performance instead of trusting a-priori estimates. The
// B and C variants differ in update granularity: AWF-B recomputes the
// weights at every batch boundary, AWF-C after every completed chunk.
// The weight of worker i is proportional to its measured execution rate
// (iterations per unit time), normalized so the weights sum to P.
//
// AF (adaptive factoring, Banicescu & Liu) drops the fixed batch ratio
// entirely: it estimates the per-iteration mean mu_i and variance
// sigma_i^2 of every worker at runtime and sizes the next chunk for
// worker i as
//
//	k_i = (D + 2*T*R - sqrt(D^2 + 4*D*T*R)) / (2*mu_i)
//
// where R is the number of remaining iterations,
// D = sum_j sigma_j^2/mu_j and T = 1/sum_j(1/mu_j). The formula chooses
// the chunk whose expected finishing time, inflated by the measured
// variability, matches the optimal probabilistic bound; more variable or
// slower workers automatically receive smaller chunks. Until a worker
// has produced a measurement, a bootstrap chunk of R/(2P) (factoring's
// first-batch share) is used.

func init() {
	register(Technique{Name: "AWF-B", Adaptive: true, New: newAWFB})
	register(Technique{Name: "AWF-C", Adaptive: true, New: newAWFC})
	register(Technique{Name: "AF", Adaptive: true, New: newAF})
}

// perfTracker accumulates per-worker measured execution rates.
type perfTracker struct {
	time  []float64 // cumulative execution time per worker
	iters []int     // cumulative iterations per worker
}

func newPerfTracker(workers int) perfTracker {
	return perfTracker{time: make([]float64, workers), iters: make([]int, workers)}
}

func (p *perfTracker) observe(w, size int, elapsed float64) {
	p.time[w] += elapsed
	p.iters[w] += size
}

// weights returns execution-rate-proportional weights normalized to sum
// to the worker count. Workers without measurements receive the mean
// measured rate (or 1 if nothing is measured yet), so early batches stay
// close to equal shares.
func (p *perfTracker) weights() []float64 {
	n := len(p.time)
	rates := make([]float64, n)
	sum, measured := 0.0, 0
	for i := range rates {
		if p.iters[i] > 0 && p.time[i] > 0 {
			rates[i] = float64(p.iters[i]) / p.time[i]
			sum += rates[i]
			measured++
		}
	}
	fallback := 1.0
	if measured > 0 {
		fallback = sum / float64(measured)
	}
	total := 0.0
	for i := range rates {
		if rates[i] == 0 {
			rates[i] = fallback
		}
		total += rates[i]
	}
	w := make([]float64, n)
	for i := range rates {
		w[i] = rates[i] * float64(n) / total
	}
	return w
}

// awf implements AWF-B and AWF-C, differing only in when weights are
// refreshed.
type awf struct {
	name     string
	perBatch bool // true: refresh at batch boundaries (AWF-B); false: every chunk (AWF-C)
	b        batcher
	weights  []float64
	perf     perfTracker
}

func newAWFB(s Setup) (Scheduler, error) { return newAWF(s, "AWF-B", true) }
func newAWFC(s Setup) (Scheduler, error) { return newAWF(s, "AWF-C", false) }

func newAWF(s Setup, name string, perBatch bool) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &awf{
		name:     name,
		perBatch: perBatch,
		b:        batcher{remaining: s.Iterations, workers: s.Workers, minChunk: s.MinChunk},
		weights:  s.normWeights(),
		perf:     newPerfTracker(s.Workers),
	}, nil
}

func (a *awf) Name() string   { return a.name }
func (a *awf) Remaining() int { return a.b.remaining }

func (a *awf) Next(worker int) int {
	if a.b.batchLeft <= 0 && a.b.remaining > 0 {
		if a.perBatch && a.anyMeasured() {
			a.weights = a.perf.weights()
		}
		a.b.openBatch()
	}
	k := int(math.Round(float64(a.b.batchChunk) * a.weights[worker]))
	return a.b.take(k)
}

func (a *awf) anyMeasured() bool {
	for _, it := range a.perf.iters {
		if it > 0 {
			return true
		}
	}
	return false
}

func (a *awf) Report(w, size int, elapsed float64) {
	a.perf.observe(w, size, elapsed)
	if !a.perBatch {
		a.weights = a.perf.weights()
	}
}

// afChunk is one completed chunk's measurement: size and mean
// per-iteration time.
type afChunk struct {
	k int
	m float64
}

// af implements adaptive factoring.
type af struct {
	remaining int
	workers   int
	chunks    [][]afChunk // per-worker completed-chunk measurements
	bootstrap int         // base chunk used before a worker has estimates
	weights   []float64   // a-priori weights scaling the bootstrap chunks
	minChunk  int
}

func newAF(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	boot := ceilDiv(s.Iterations, 2*s.Workers)
	if boot < 1 {
		boot = 1
	}
	return &af{
		remaining: s.Iterations,
		workers:   s.Workers,
		chunks:    make([][]afChunk, s.Workers),
		bootstrap: boot,
		weights:   s.normWeights(),
		minChunk:  maxInt(1, s.MinChunk),
	}, nil
}

// bootChunk is the pre-measurement chunk for a worker: factoring's
// first-batch share scaled by the a-priori weight, so a processor known
// to be heavily loaded is not sunk by its very first chunk.
func (a *af) bootChunk(worker int) int {
	k := int(math.Round(float64(a.bootstrap) * a.weights[worker]))
	return clampChunk(k, a.remaining)
}

func (a *af) Name() string   { return "AF" }
func (a *af) Remaining() int { return a.remaining }

// workerMoments estimates worker w's per-iteration mean and variance
// from its completed chunks. The mean is the iteration-weighted average
// of the chunk means. Because a chunk of k iterations only exposes its
// mean m (distributed with variance sigma^2/k), the per-iteration
// variance is recovered as the chunk-count average of k*(m - mu)^2,
// which is unbiased for i.i.d. iteration times.
func (a *af) workerMoments(w int) (mu, varc float64, ok bool) {
	cs := a.chunks[w]
	if len(cs) == 0 {
		return 0, 0, false
	}
	sumK, sumKM := 0.0, 0.0
	for _, c := range cs {
		sumK += float64(c.k)
		sumKM += float64(c.k) * c.m
	}
	mu = sumKM / sumK
	if len(cs) == 1 {
		// A single chunk cannot expose spread; assume a conservative
		// 10% coefficient of variation until a second measurement lands.
		sd := 0.1 * mu
		return mu, sd * sd, true
	}
	s := 0.0
	for _, c := range cs {
		d := c.m - mu
		s += float64(c.k) * d * d
	}
	return mu, s / float64(len(cs)-1), true
}

// moments returns the current (mu, sigma^2) estimates for all workers,
// falling back to the average over measured workers.
func (a *af) moments() (mu, varc []float64, haveAny bool) {
	mu = make([]float64, a.workers)
	varc = make([]float64, a.workers)
	sumMu, sumVar, measured := 0.0, 0.0, 0
	seen := make([]bool, a.workers)
	for i := range a.chunks {
		if m, v, ok := a.workerMoments(i); ok {
			mu[i], varc[i] = m, v
			seen[i] = true
			sumMu += m
			sumVar += v
			measured++
		}
	}
	if measured == 0 {
		return mu, varc, false
	}
	mMu, mVar := sumMu/float64(measured), sumVar/float64(measured)
	for i := range mu {
		if !seen[i] {
			mu[i], varc[i] = mMu, mVar
		}
	}
	return mu, varc, true
}

func (a *af) Next(worker int) int {
	if a.remaining <= 0 {
		return 0
	}
	mu, varc, ok := a.moments()
	if !ok || mu[worker] <= 0 {
		k := a.bootChunk(worker)
		a.remaining -= k
		return k
	}
	// D = sum_j sigma_j^2 / mu_j ; T = 1 / sum_j (1/mu_j).
	d, invSum := 0.0, 0.0
	for j := 0; j < a.workers; j++ {
		if mu[j] <= 0 {
			continue
		}
		d += varc[j] / mu[j]
		invSum += 1 / mu[j]
	}
	if invSum <= 0 {
		k := a.bootChunk(worker)
		a.remaining -= k
		return k
	}
	t := 1 / invSum
	r := float64(a.remaining)
	num := d + 2*t*r - math.Sqrt(d*d+4*d*t*r)
	k := int(math.Floor(num / (2 * mu[worker])))
	// Batch cap: never hand out more than the worker's rate-
	// proportional share of half the remaining iterations. The original
	// AF is batch-structured; without this factoring-style geometric
	// tail a slow worker can receive a final chunk large enough to
	// become the application's straggler when the measured variance
	// (and hence the sqrt margin) is still small.
	share := (1 / mu[worker]) / invSum
	if cap := int(math.Ceil(r / 2 * share)); k > cap {
		k = cap
	}
	k = clampChunk(k, a.remaining)
	if k < a.minChunk {
		k = clampChunk(a.minChunk, a.remaining)
	}
	a.remaining -= k
	return k
}

func (a *af) Report(w, size int, elapsed float64) {
	if size <= 0 || elapsed <= 0 {
		return
	}
	a.chunks[w] = append(a.chunks[w], afChunk{k: size, m: elapsed / float64(size)})
}

package dls

import (
	"math"
)

// This file implements the batched probabilistic techniques FAC and WF.
//
// Factoring (Hummel, Schonberg & Flynn) schedules iterations in batches:
// each batch contains a fixed ratio (here 1/2, the practical "FAC2"
// rule derived from the probabilistic analysis) of the remaining
// iterations, split into P equal chunks. Early batches are large enough
// to amortize overhead; the geometric tail smooths out imbalance.
//
// Weighted factoring (Banicescu, Hummel et al.) keeps factoring's batch
// rule but splits each batch proportionally to fixed a-priori worker
// weights, so faster or more-available processors receive proportionally
// more iterations of every batch.

func init() {
	register(Technique{Name: "FAC", New: newFAC})
	register(Technique{Name: "WF", New: newWF})
}

// batcher carries the shared batch bookkeeping for FAC, WF, and the AWF
// variants: a batch is opened over ceil(R/2) iterations and closed when
// its iterations have all been handed out.
type batcher struct {
	remaining  int // iterations not yet handed out (loop-wide)
	batchLeft  int // iterations of the current batch not yet handed out
	batchChunk int // equal per-worker share of the current batch
	workers    int
	minChunk   int // granularity floor (applied within a batch)
}

// openBatch starts a new batch over half the remaining iterations.
func (b *batcher) openBatch() {
	b.batchLeft = ceilDiv(b.remaining, 2)
	b.batchChunk = ceilDiv(b.batchLeft, b.workers)
	if b.batchChunk < 1 {
		b.batchChunk = 1
	}
}

// take removes up to k iterations from the current batch (opening a new
// one if exhausted) and from the loop, returning the granted size.
func (b *batcher) take(k int) int {
	if b.remaining <= 0 {
		return 0
	}
	if b.batchLeft <= 0 {
		b.openBatch()
	}
	if k < b.minChunk {
		k = b.minChunk
	}
	if k > b.batchLeft {
		k = b.batchLeft
	}
	k = clampChunk(k, b.remaining)
	b.batchLeft -= k
	b.remaining -= k
	return k
}

// fac implements factoring with the practical factor-2 rule.
type fac struct {
	b batcher
}

func newFAC(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &fac{b: batcher{remaining: s.Iterations, workers: s.Workers, minChunk: s.MinChunk}}, nil
}

func (f *fac) Name() string   { return "FAC" }
func (f *fac) Remaining() int { return f.b.remaining }

func (f *fac) Next(int) int {
	if f.b.batchLeft <= 0 && f.b.remaining > 0 {
		f.b.openBatch()
	}
	return f.b.take(f.b.batchChunk)
}

func (f *fac) Report(int, int, float64) {}

// wf implements weighted factoring: factoring batches split by fixed
// relative worker weights (normalized to sum to P).
type wf struct {
	b       batcher
	weights []float64
}

func newWF(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &wf{
		b:       batcher{remaining: s.Iterations, workers: s.Workers, minChunk: s.MinChunk},
		weights: s.normWeights(),
	}, nil
}

func (w *wf) Name() string   { return "WF" }
func (w *wf) Remaining() int { return w.b.remaining }

func (w *wf) Next(worker int) int {
	if w.b.batchLeft <= 0 && w.b.remaining > 0 {
		w.b.openBatch()
	}
	k := int(math.Round(float64(w.b.batchChunk) * w.weights[worker]))
	return w.b.take(k)
}

func (w *wf) Report(int, int, float64) {}

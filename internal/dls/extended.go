package dls

import (
	"math"
)

// This file implements the extended technique set beyond the paper's
// Stage-II choices — the additional methods its future-work section
// points to (Carino & Banicescu, "Dynamic load balancing with adaptive
// factoring methods in scientific applications", J. Supercomputing
// 2008):
//
//   - AWF-D and AWF-E: like AWF-B and AWF-C, but the measured cost of a
//     chunk includes the scheduling overhead h, so the learned weights
//     account for dispatch cost and not just execution speed.
//   - TFSS (trapezoid factoring self-scheduling): factoring's batch
//     structure with TSS's linearly decreasing batch sizes.
//   - FISS (fixed increase size scheduling): chunk sizes *increase*
//     linearly — small exploratory chunks first, large chunks once the
//     system is warmed up.
//   - VISS (variable increase size scheduling): chunk sizes increase
//     geometrically (the mirror image of factoring).
//   - AWF (the original time-stepping variant): weighted factoring
//     whose weights are re-learned only at application time-step
//     boundaries; see TimeStepper.

func init() {
	register(Technique{Name: "AWF-D", Adaptive: true, New: newAWFD})
	register(Technique{Name: "AWF-E", Adaptive: true, New: newAWFE})
	register(Technique{Name: "AWF", Adaptive: true, New: newAWFT})
	register(Technique{Name: "TFSS", New: newTFSS})
	register(Technique{Name: "FISS", New: newFISS})
	register(Technique{Name: "VISS", New: newVISS})
}

// TimeStepper is implemented by schedulers that support time-stepping
// applications: loops executed repeatedly over the same iteration
// space. EndStep resets the iteration space for the next sweep while
// retaining learned state (the original AWF's defining behaviour).
type TimeStepper interface {
	// EndStep finishes the current sweep and re-arms the scheduler for
	// the next one with the same iteration count.
	EndStep()
}

// awfOverhead wraps the AWF batch machinery with overhead-inclusive
// measurements: the recorded cost of a chunk is elapsed + h, matching
// the AWF-D/E definitions.
type awfOverhead struct {
	awf
	overhead float64
}

func newAWFD(s Setup) (Scheduler, error) { return newAWFOv(s, "AWF-D", true) }
func newAWFE(s Setup) (Scheduler, error) { return newAWFOv(s, "AWF-E", false) }

func newAWFOv(s Setup, name string, perBatch bool) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &awfOverhead{
		awf: awf{
			name:     name,
			perBatch: perBatch,
			b:        batcher{remaining: s.Iterations, workers: s.Workers, minChunk: s.MinChunk},
			weights:  s.normWeights(),
			perf:     newPerfTracker(s.Workers),
		},
		overhead: s.Overhead,
	}, nil
}

func (a *awfOverhead) Report(w, size int, elapsed float64) {
	a.awf.Report(w, size, elapsed+a.overhead)
}

// awfTimestep is the original AWF: within a sweep it behaves as
// weighted factoring with the current weights; weights are recomputed
// from cumulative measured performance only at EndStep.
type awfTimestep struct {
	iterations int
	b          batcher
	weights    []float64
	perf       perfTracker
}

func newAWFT(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &awfTimestep{
		iterations: s.Iterations,
		b:          batcher{remaining: s.Iterations, workers: s.Workers, minChunk: s.MinChunk},
		weights:    s.normWeights(),
		perf:       newPerfTracker(s.Workers),
	}, nil
}

func (a *awfTimestep) Name() string   { return "AWF" }
func (a *awfTimestep) Remaining() int { return a.b.remaining }

func (a *awfTimestep) Next(worker int) int {
	if a.b.batchLeft <= 0 && a.b.remaining > 0 {
		a.b.openBatch()
	}
	k := int(math.Round(float64(a.b.batchChunk) * a.weights[worker]))
	return a.b.take(k)
}

func (a *awfTimestep) Report(w, size int, elapsed float64) {
	a.perf.observe(w, size, elapsed)
}

// EndStep implements TimeStepper: re-learn the weights from everything
// measured so far and re-arm the iteration space.
func (a *awfTimestep) EndStep() {
	measured := false
	for _, it := range a.perf.iters {
		if it > 0 {
			measured = true
			break
		}
	}
	if measured {
		a.weights = a.perf.weights()
	}
	a.b = batcher{remaining: a.iterations, workers: a.b.workers, minChunk: a.b.minChunk}
}

// tfss implements trapezoid factoring self-scheduling: batches of
// linearly decreasing size (TSS's schedule applied to batches), each
// split equally among the workers.
type tfss struct {
	b     batcher
	next  float64 // next batch size
	delta float64
}

func newTFSS(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	first := float64(s.Iterations) / 2
	if first < 1 {
		first = 1
	}
	last := float64(s.Workers)
	if last > first {
		last = first
	}
	c := math.Ceil(2 * float64(s.Iterations) / (first + last))
	delta := 0.0
	if c > 1 {
		delta = (first - last) / (c - 1)
	}
	return &tfss{
		b:     batcher{remaining: s.Iterations, workers: s.Workers, minChunk: s.MinChunk},
		next:  first,
		delta: delta,
	}, nil
}

func (t *tfss) Name() string   { return "TFSS" }
func (t *tfss) Remaining() int { return t.b.remaining }

func (t *tfss) Next(int) int {
	if t.b.batchLeft <= 0 && t.b.remaining > 0 {
		size := int(math.Round(t.next))
		if size < 1 {
			size = 1
		}
		if size > t.b.remaining {
			size = t.b.remaining
		}
		t.b.batchLeft = size
		t.b.batchChunk = ceilDiv(size, t.b.workers)
		t.next -= t.delta
		if t.next < 1 {
			t.next = 1
		}
	}
	return t.b.take(t.b.batchChunk)
}

func (t *tfss) Report(int, int, float64) {}

// fiss implements fixed increase size scheduling: chunk sizes grow by a
// constant increment. With B scheduling rounds (default 4 per worker
// wave), the first chunk is N/((2+B)P) and grows by the same amount
// each round, so the mean chunk is N/(B*P)-ish and the total fits N.
type fiss struct {
	remaining int
	chunk     float64
	incr      float64
	minChunk  int
}

func newFISS(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	const rounds = 4.0
	first := float64(s.Iterations) / ((2 + rounds) * float64(s.Workers))
	if first < 1 {
		first = 1
	}
	// Total over B rounds per worker: P * (B*first + B(B-1)/2 * incr) = N.
	incr := (float64(s.Iterations)/float64(s.Workers) - rounds*first) /
		(rounds * (rounds - 1) / 2)
	if incr < 0 {
		incr = 0
	}
	return &fiss{remaining: s.Iterations, chunk: first, incr: incr, minChunk: s.MinChunk}, nil
}

func (f *fiss) Name() string   { return "FISS" }
func (f *fiss) Remaining() int { return f.remaining }

func (f *fiss) Next(int) int {
	k := floorChunk(int(math.Round(f.chunk)), f.minChunk, f.remaining)
	f.remaining -= k
	f.chunk += f.incr / float64(4) // spread the per-round increment over worker requests
	return k
}

func (f *fiss) Report(int, int, float64) {}

// viss implements variable increase size scheduling: chunk sizes grow
// geometrically from a small start (factoring run in reverse), capped
// at the remaining iterations.
type viss struct {
	remaining int
	chunk     float64
	factor    float64
	maxChunk  int
	minChunk  int
}

func newVISS(s Setup) (Scheduler, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	first := float64(s.Iterations) / float64(8*s.Workers)
	if first < 1 {
		first = 1
	}
	return &viss{
		remaining: s.Iterations,
		chunk:     first,
		factor:    1.5,
		maxChunk:  ceilDiv(s.Iterations, 2*s.Workers) * 2,
		minChunk:  s.MinChunk,
	}, nil
}

func (v *viss) Name() string   { return "VISS" }
func (v *viss) Remaining() int { return v.remaining }

func (v *viss) Next(int) int {
	k := floorChunk(int(math.Round(v.chunk)), v.minChunk, v.remaining)
	v.remaining -= k
	v.chunk *= v.factor
	if int(v.chunk) > v.maxChunk {
		v.chunk = float64(v.maxChunk)
	}
	return k
}

func (v *viss) Report(int, int, float64) {}

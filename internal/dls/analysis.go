package dls

import (
	"fmt"
)

// This file provides the static analysis of a technique's dispatch
// schedule: the chunk sizes it would issue on an ideal homogeneous
// system where every chunk takes time proportional to its size. The
// analysis needs no simulator and yields the classic technique
// comparison quantities — chunk count (scheduling overhead events),
// first/last chunk sizes, and the overhead-to-work ratio at a given h.
// Adaptive techniques are analyzed at their a-priori behaviour (all
// workers reporting equal speeds), which equals their first-batch
// schedule.

// ScheduleEntry is one dispatched chunk of the analyzed schedule.
type ScheduleEntry struct {
	Worker int
	Size   int
}

// ScheduleAnalysis summarizes a technique's dispatch schedule.
type ScheduleAnalysis struct {
	Technique string
	// Entries is the full dispatch order under round-robin idealized
	// execution (each worker finishes chunks in proportion to size).
	Entries []ScheduleEntry
	// Chunks is len(Entries).
	Chunks int
	// FirstChunk and LastChunk are the first and final chunk sizes.
	FirstChunk, LastChunk int
	// MeanChunk is Iterations / Chunks.
	MeanChunk float64
	// OverheadRatio is Chunks*h / (Iterations*iterMean): the fraction
	// of useful work spent on dispatch at overhead h.
	OverheadRatio float64
}

// AnalyzeSchedule drives a fresh scheduler on an idealized homogeneous
// system: all workers identical, every iteration costing iterMean, so
// workers request chunks in an order determined only by accumulated
// work. It returns the resulting schedule statistics. The scheduler's
// measurements are fed back with exact proportional times, so adaptive
// techniques behave as with perfect equal estimates.
func AnalyzeSchedule(tech Technique, iterations, workers int, overhead, iterMean float64) (*ScheduleAnalysis, error) {
	if iterMean <= 0 {
		return nil, fmt.Errorf("dls: non-positive iterMean %v", iterMean)
	}
	s, err := tech.New(Setup{
		Iterations: iterations,
		Workers:    workers,
		Overhead:   overhead,
		IterMean:   iterMean,
	})
	if err != nil {
		return nil, err
	}
	a := &ScheduleAnalysis{Technique: tech.Name}
	// Idealized event loop: the worker with the least accumulated time
	// requests next.
	busy := make([]float64, workers)
	done := make([]bool, workers)
	active := workers
	guard := 0
	for active > 0 {
		// Pick the least-busy active worker.
		w := -1
		for i := 0; i < workers; i++ {
			if done[i] {
				continue
			}
			if w < 0 || busy[i] < busy[w] {
				w = i
			}
		}
		k := s.Next(w)
		if k == 0 {
			done[w] = true
			active--
			continue
		}
		elapsed := float64(k) * iterMean
		s.Report(w, k, elapsed)
		busy[w] += elapsed + overhead
		a.Entries = append(a.Entries, ScheduleEntry{Worker: w, Size: k})
		if guard++; guard > 10_000_000 {
			return nil, fmt.Errorf("dls: %s schedule did not terminate", tech.Name)
		}
	}
	a.Chunks = len(a.Entries)
	if a.Chunks == 0 {
		return nil, fmt.Errorf("dls: %s dispatched no chunks", tech.Name)
	}
	a.FirstChunk = a.Entries[0].Size
	a.LastChunk = a.Entries[a.Chunks-1].Size
	a.MeanChunk = float64(iterations) / float64(a.Chunks)
	a.OverheadRatio = float64(a.Chunks) * overhead / (float64(iterations) * iterMean)
	return a, nil
}

// CompareSchedules analyzes every given technique on the same loop and
// returns the results in input order.
func CompareSchedules(techs []Technique, iterations, workers int, overhead, iterMean float64) ([]*ScheduleAnalysis, error) {
	out := make([]*ScheduleAnalysis, len(techs))
	for i, tech := range techs {
		a, err := AnalyzeSchedule(tech, iterations, workers, overhead, iterMean)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

package dls

import (
	"math"
	"testing"
	"testing/quick"
)

// drain runs a scheduler round-robin until exhaustion, returning every
// chunk in dispatch order as (worker, size) pairs. report, when
// non-nil, maps (worker, size) to the elapsed time fed back to the
// scheduler.
func drain(t *testing.T, s Scheduler, workers int, report func(w, size int) float64) [][2]int {
	t.Helper()
	var chunks [][2]int
	active := workers
	done := make([]bool, workers)
	for active > 0 {
		progressed := false
		for w := 0; w < workers; w++ {
			if done[w] {
				continue
			}
			k := s.Next(w)
			if k == 0 {
				done[w] = true
				active--
				continue
			}
			progressed = true
			if k < 0 {
				t.Fatalf("%s returned negative chunk %d", s.Name(), k)
			}
			chunks = append(chunks, [2]int{w, k})
			if report != nil {
				s.Report(w, k, report(w, k))
			}
			if len(chunks) > 1_000_000 {
				t.Fatalf("%s did not terminate", s.Name())
			}
		}
		if !progressed && active > 0 {
			// All remaining workers were told 0; they are done.
			break
		}
	}
	return chunks
}

func sumChunks(chunks [][2]int) int {
	s := 0
	for _, c := range chunks {
		s += c[1]
	}
	return s
}

func newScheduler(t *testing.T, name string, s Setup) Scheduler {
	t.Helper()
	tech, ok := Get(name)
	if !ok {
		t.Fatalf("technique %q not registered", name)
	}
	sched, err := tech.New(s)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return sched
}

func TestRegistry(t *testing.T) {
	want := []string{"AF", "AWF", "AWF-B", "AWF-C", "AWF-D", "AWF-E",
		"FAC", "FISS", "FSC", "GSS", "SS", "STATIC", "TFSS", "TSS", "VISS", "WF"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered %v, want %v", got, want)
		}
	}
	if _, ok := Get("fac"); !ok {
		t.Error("lookup is not case-insensitive")
	}
	if _, ok := Get("nope"); ok {
		t.Error("unknown technique found")
	}
}

func TestPaperRobustSet(t *testing.T) {
	set := PaperRobustSet()
	want := []string{"FAC", "WF", "AWF-B", "AF"}
	for i, tech := range set {
		if tech.Name != want[i] {
			t.Errorf("robust set[%d] = %s, want %s", i, tech.Name, want[i])
		}
	}
}

func TestAllTechniquesScheduleEveryIteration(t *testing.T) {
	for _, tech := range All() {
		for _, cfg := range []struct{ n, p int }{
			{1, 1}, {7, 3}, {100, 4}, {1000, 8}, {4096, 16}, {5, 8},
		} {
			s, err := tech.New(Setup{Iterations: cfg.n, Workers: cfg.p})
			if err != nil {
				t.Fatalf("%s(%d,%d): %v", tech.Name, cfg.n, cfg.p, err)
			}
			chunks := drain(t, s, cfg.p, func(w, k int) float64 { return float64(k) })
			if got := sumChunks(chunks); got != cfg.n {
				t.Errorf("%s(%d,%d): scheduled %d iterations", tech.Name, cfg.n, cfg.p, got)
			}
			if s.Remaining() != 0 {
				t.Errorf("%s(%d,%d): %d remaining after drain", tech.Name, cfg.n, cfg.p, s.Remaining())
			}
		}
	}
}

func TestSetupValidation(t *testing.T) {
	bad := []Setup{
		{Iterations: 0, Workers: 1},
		{Iterations: 10, Workers: 0},
		{Iterations: 10, Workers: 2, Weights: []float64{1}},
		{Iterations: 10, Workers: 2, Weights: []float64{1, -1}},
	}
	for _, tech := range All() {
		for i, s := range bad {
			if _, err := tech.New(s); err == nil {
				t.Errorf("%s accepted bad setup %d", tech.Name, i)
			}
		}
	}
}

func TestStaticOneChunkPerWorker(t *testing.T) {
	s := newScheduler(t, "STATIC", Setup{Iterations: 100, Workers: 4})
	chunks := drain(t, s, 4, nil)
	if len(chunks) != 4 {
		t.Fatalf("STATIC dispatched %d chunks, want 4", len(chunks))
	}
	for _, c := range chunks {
		if c[1] != 25 {
			t.Errorf("STATIC chunk = %d, want 25", c[1])
		}
	}
	// A worker asking twice gets nothing the second time, even with
	// iterations remaining elsewhere.
	s2 := newScheduler(t, "STATIC", Setup{Iterations: 100, Workers: 4})
	if k := s2.Next(0); k != 25 {
		t.Fatalf("first chunk = %d", k)
	}
	if k := s2.Next(0); k != 0 {
		t.Errorf("second request served %d (STATIC must not rebalance)", k)
	}
}

func TestSSUnitChunks(t *testing.T) {
	s := newScheduler(t, "SS", Setup{Iterations: 10, Workers: 3})
	chunks := drain(t, s, 3, nil)
	if len(chunks) != 10 {
		t.Fatalf("SS dispatched %d chunks", len(chunks))
	}
	for _, c := range chunks {
		if c[1] != 1 {
			t.Errorf("SS chunk = %d", c[1])
		}
	}
}

func TestGSSDecreasingGuided(t *testing.T) {
	s := newScheduler(t, "GSS", Setup{Iterations: 1000, Workers: 4})
	// First chunk is ceil(1000/4) = 250, then ceil(750/4) = 188, ...
	if k := s.Next(0); k != 250 {
		t.Errorf("GSS first chunk = %d, want 250", k)
	}
	if k := s.Next(1); k != 188 {
		t.Errorf("GSS second chunk = %d, want 188", k)
	}
	prev := math.MaxInt
	s2 := newScheduler(t, "GSS", Setup{Iterations: 1000, Workers: 4})
	for {
		k := s2.Next(0)
		if k == 0 {
			break
		}
		if k > prev {
			t.Fatalf("GSS chunk grew: %d after %d", k, prev)
		}
		prev = k
	}
}

func TestTSSLinearDecrement(t *testing.T) {
	s := newScheduler(t, "TSS", Setup{Iterations: 1000, Workers: 4})
	// f = 125, l = 1, C = ceil(2000/126) = 16, delta = 124/15 ~ 8.27.
	k1 := s.Next(0)
	k2 := s.Next(1)
	k3 := s.Next(2)
	if k1 != 125 {
		t.Errorf("TSS first chunk = %d, want 125", k1)
	}
	if d1, d2 := k1-k2, k2-k3; d1 < 7 || d1 > 10 || d2 < 7 || d2 > 10 {
		t.Errorf("TSS decrements %d, %d not ~8", d1, d2)
	}
}

func TestFSCUsesOverheadFormula(t *testing.T) {
	// With sigma and overhead, k = (sqrt(2)*N*h/(sigma*P*sqrt(ln P)))^(2/3).
	s := newScheduler(t, "FSC", Setup{
		Iterations: 10000, Workers: 8, Overhead: 2, IterMean: 1, IterStdDev: 0.5,
	})
	want := math.Pow(math.Sqrt2*10000*2/(0.5*8*math.Sqrt(math.Log(8))), 2.0/3.0)
	k := s.Next(0)
	if math.Abs(float64(k)-want) > 1.5 {
		t.Errorf("FSC chunk = %d, want ~%.1f", k, want)
	}
	// Chunks stay fixed.
	if k2 := s.Next(1); k2 != k {
		t.Errorf("FSC chunk changed: %d then %d", k, k2)
	}
	// Fallback without sigma: N/(2P).
	s2 := newScheduler(t, "FSC", Setup{Iterations: 1000, Workers: 4})
	if k := s2.Next(0); k != 125 {
		t.Errorf("FSC fallback chunk = %d, want 125", k)
	}
}

func TestFACBatchStructure(t *testing.T) {
	s := newScheduler(t, "FAC", Setup{Iterations: 1000, Workers: 4})
	// Batch 1 covers 500 iterations in chunks of 125.
	for i := 0; i < 4; i++ {
		if k := s.Next(i); k != 125 {
			t.Fatalf("FAC batch-1 chunk = %d, want 125", k)
		}
	}
	// Batch 2 covers 250 in chunks of 63 (ceil(250/4)).
	if k := s.Next(0); k != 63 {
		t.Errorf("FAC batch-2 chunk = %d, want 63", k)
	}
}

func TestWFWeightsSplitBatch(t *testing.T) {
	s := newScheduler(t, "WF", Setup{
		Iterations: 1000, Workers: 2, Weights: []float64{3, 1},
	})
	// Batch 1 = 500, equal share 250; weights normalized to {1.5, 0.5}:
	// worker 0 gets 375, worker 1 gets 125.
	if k := s.Next(0); k != 375 {
		t.Errorf("WF heavy worker chunk = %d, want 375", k)
	}
	if k := s.Next(1); k != 125 {
		t.Errorf("WF light worker chunk = %d, want 125", k)
	}
}

func TestWFEqualWeightsMatchesFAC(t *testing.T) {
	wf := newScheduler(t, "WF", Setup{Iterations: 777, Workers: 3})
	fac := newScheduler(t, "FAC", Setup{Iterations: 777, Workers: 3})
	for {
		kw := wf.Next(0)
		kf := fac.Next(0)
		if kw != kf {
			t.Fatalf("WF %d != FAC %d with equal weights", kw, kf)
		}
		if kw == 0 {
			break
		}
	}
}

func TestAWFBAdaptsToSlowWorker(t *testing.T) {
	s := newScheduler(t, "AWF-B", Setup{Iterations: 4000, Workers: 2})
	// Worker 1 runs 4x slower. Feed several batches and check worker 0
	// accumulates substantially more iterations.
	iters := [2]int{}
	done := [2]bool{}
	for !done[0] || !done[1] {
		for w := 0; w < 2; w++ {
			if done[w] {
				continue
			}
			k := s.Next(w)
			if k == 0 {
				done[w] = true
				continue
			}
			iters[w] += k
			speed := 1.0
			if w == 1 {
				speed = 4
			}
			s.Report(w, k, float64(k)*speed)
		}
	}
	if iters[0] <= iters[1] {
		t.Errorf("AWF-B gave fast worker %d <= slow worker %d", iters[0], iters[1])
	}
	if ratio := float64(iters[0]) / float64(iters[1]); ratio < 1.5 {
		t.Errorf("AWF-B adaptation ratio %.2f too weak", ratio)
	}
}

func TestAWFCAdaptsFasterThanAWFB(t *testing.T) {
	run := func(name string) [2]int {
		s := newScheduler(t, name, Setup{Iterations: 2000, Workers: 2})
		iters := [2]int{}
		done := [2]bool{}
		for !done[0] || !done[1] {
			for w := 0; w < 2; w++ {
				if done[w] {
					continue
				}
				k := s.Next(w)
				if k == 0 {
					done[w] = true
					continue
				}
				iters[w] += k
				speed := 1.0
				if w == 1 {
					speed = 8
				}
				s.Report(w, k, float64(k)*speed)
			}
		}
		return iters
	}
	b := run("AWF-B")
	c := run("AWF-C")
	// Both adapt; AWF-C must not be substantially worse than AWF-B at
	// skewing toward the fast worker.
	rb := float64(b[0]) / float64(b[1])
	rc := float64(c[0]) / float64(c[1])
	if rc < rb*0.8 {
		t.Errorf("AWF-C ratio %.2f much weaker than AWF-B %.2f", rc, rb)
	}
}

func TestAFAdaptsChunksToRates(t *testing.T) {
	s := newScheduler(t, "AF", Setup{Iterations: 10000, Workers: 2})
	// Bootstrap both workers with measurements: worker 0 fast (mu=1),
	// worker 1 slow (mu=5).
	k0 := s.Next(0)
	s.Report(0, k0, float64(k0))
	k1 := s.Next(1)
	s.Report(1, k1, float64(k1)*5)
	// Second round: chunks should now be roughly rate-proportional.
	c0 := s.Next(0)
	c1 := s.Next(1)
	if c0 <= c1 {
		t.Errorf("AF fast-worker chunk %d <= slow-worker chunk %d", c0, c1)
	}
	if ratio := float64(c0) / float64(c1); ratio < 2 || ratio > 10 {
		t.Errorf("AF chunk ratio = %.2f, want roughly the 5x rate ratio", ratio)
	}
}

func TestAFBatchCap(t *testing.T) {
	s := newScheduler(t, "AF", Setup{Iterations: 10000, Workers: 2})
	k0 := s.Next(0)
	s.Report(0, k0, float64(k0))
	k1 := s.Next(1)
	s.Report(1, k1, float64(k1))
	// With equal rates the cap limits each chunk to about half the
	// remaining divided by the two workers.
	remaining := s.Remaining()
	c := s.Next(0)
	if c > remaining/2/2+remaining/10 {
		t.Errorf("AF chunk %d exceeds the half-remaining share cap (remaining %d)", c, remaining)
	}
}

func TestAdaptiveFlag(t *testing.T) {
	adaptive := map[string]bool{
		"AF": true, "AWF": true, "AWF-B": true, "AWF-C": true,
		"AWF-D": true, "AWF-E": true,
	}
	for _, tech := range All() {
		if tech.Adaptive != adaptive[tech.Name] {
			t.Errorf("%s Adaptive = %v", tech.Name, tech.Adaptive)
		}
	}
}

func TestReportIgnoresGarbage(t *testing.T) {
	for _, name := range []string{"AF", "AWF-B", "AWF-C"} {
		s := newScheduler(t, name, Setup{Iterations: 100, Workers: 2})
		s.Report(0, 0, 5)  // zero size
		s.Report(0, 5, -1) // negative elapsed
		s.Report(1, -3, 2) // negative size
		chunks := drain(t, s, 2, func(w, k int) float64 { return float64(k) })
		if sumChunks(chunks) != 100 {
			t.Errorf("%s lost iterations after garbage reports", name)
		}
	}
}

// TestQuickChunkConservation property-checks that every technique
// schedules exactly N iterations for arbitrary sizes, worker counts,
// and measured speeds.
func TestQuickChunkConservation(t *testing.T) {
	techs := All()
	f := func(nRaw uint16, pRaw, techRaw uint8, speedRaw [8]uint8) bool {
		n := int(nRaw)%5000 + 1
		p := int(pRaw)%12 + 1
		tech := techs[int(techRaw)%len(techs)]
		s, err := tech.New(Setup{Iterations: n, Workers: p})
		if err != nil {
			return false
		}
		total := 0
		done := make([]bool, p)
		active := p
		guard := 0
		for active > 0 {
			for w := 0; w < p; w++ {
				if done[w] {
					continue
				}
				k := s.Next(w)
				if k < 0 || k > n {
					return false
				}
				if k == 0 {
					done[w] = true
					active--
					continue
				}
				total += k
				speed := float64(speedRaw[w%8]%7) + 1
				s.Report(w, k, float64(k)*speed)
				if guard++; guard > 200000 {
					return false
				}
			}
		}
		return total == n && s.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinChunkFloor(t *testing.T) {
	for _, tech := range All() {
		s, err := tech.New(Setup{Iterations: 1000, Workers: 4, MinChunk: 16})
		if err != nil {
			t.Fatalf("%s: %v", tech.Name, err)
		}
		chunks := drain(t, s, 4, func(w, k int) float64 { return float64(k) })
		if got := sumChunks(chunks); got != 1000 {
			t.Fatalf("%s: scheduled %d with MinChunk", tech.Name, got)
		}
		// Every chunk except possibly per-batch/loop tails respects the
		// floor; allow a small number of sub-floor tail chunks.
		small := 0
		for _, c := range chunks {
			if c[1] < 16 {
				small++
			}
		}
		if small > len(chunks)/3+2 {
			t.Errorf("%s: %d of %d chunks below the floor", tech.Name, small, len(chunks))
		}
	}
	// SS with a floor becomes fixed-size chunking.
	s := newScheduler(t, "SS", Setup{Iterations: 100, Workers: 2, MinChunk: 10})
	if k := s.Next(0); k != 10 {
		t.Errorf("SS with MinChunk 10 dispatched %d", k)
	}
}

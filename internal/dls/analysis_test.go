package dls

import (
	"math"
	"testing"
)

func mustAnalyze(t *testing.T, name string, n, p int, h float64) *ScheduleAnalysis {
	t.Helper()
	tech, ok := Get(name)
	if !ok {
		t.Fatalf("technique %q missing", name)
	}
	a, err := AnalyzeSchedule(tech, n, p, h, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeScheduleConservation(t *testing.T) {
	for _, name := range Names() {
		a := mustAnalyze(t, name, 1000, 4, 0.5)
		total := 0
		for _, e := range a.Entries {
			total += e.Size
		}
		if total != 1000 {
			t.Errorf("%s schedule covers %d iterations", name, total)
		}
		if a.MeanChunk <= 0 || a.FirstChunk <= 0 || a.LastChunk <= 0 {
			t.Errorf("%s: degenerate stats %+v", name, a)
		}
	}
}

func TestAnalyzeScheduleKnownCounts(t *testing.T) {
	// STATIC: exactly P chunks of N/P.
	a := mustAnalyze(t, "STATIC", 1000, 4, 0)
	if a.Chunks != 4 || a.FirstChunk != 250 {
		t.Errorf("STATIC analysis %+v", a)
	}
	// SS: exactly N chunks of 1.
	s := mustAnalyze(t, "SS", 100, 4, 0)
	if s.Chunks != 100 || s.MeanChunk != 1 {
		t.Errorf("SS analysis %+v", s)
	}
	// FAC: first batch chunks are N/(2P).
	f := mustAnalyze(t, "FAC", 1000, 4, 0)
	if f.FirstChunk != 125 {
		t.Errorf("FAC first chunk %d", f.FirstChunk)
	}
	// Chunk counts are ordered SS > FAC > STATIC.
	if !(s.Chunks > f.Chunks && f.Chunks > a.Chunks) {
		t.Errorf("chunk-count ordering violated: SS %d, FAC %d, STATIC %d",
			s.Chunks, f.Chunks, a.Chunks)
	}
}

func TestOverheadRatio(t *testing.T) {
	a := mustAnalyze(t, "SS", 1000, 4, 2)
	// SS: 1000 chunks * 2 overhead over 1000*1 work = 2.0.
	if math.Abs(a.OverheadRatio-2.0) > 1e-12 {
		t.Errorf("SS overhead ratio = %v", a.OverheadRatio)
	}
	st := mustAnalyze(t, "STATIC", 1000, 4, 2)
	if st.OverheadRatio >= a.OverheadRatio {
		t.Error("STATIC overhead ratio not below SS")
	}
}

func TestCompareSchedules(t *testing.T) {
	res, err := CompareSchedules(PaperRobustSet(), 2048, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d analyses", len(res))
	}
	for _, a := range res {
		if a.Chunks <= 8 {
			t.Errorf("%s suspiciously few chunks: %d", a.Technique, a.Chunks)
		}
	}
}

func TestAnalyzeScheduleErrors(t *testing.T) {
	tech, _ := Get("FAC")
	if _, err := AnalyzeSchedule(tech, 100, 4, 0, 0); err == nil {
		t.Error("zero iterMean accepted")
	}
	if _, err := AnalyzeSchedule(tech, 0, 4, 0, 1); err == nil {
		t.Error("zero iterations accepted")
	}
}

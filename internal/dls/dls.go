// Package dls implements the dynamic loop scheduling (DLS) techniques
// the paper employs in Stage II, plus the classic baselines they were
// derived from.
//
// A DLS technique decides, every time a worker becomes idle, how many of
// the remaining loop iterations to hand it as one chunk. The tension is
// classic: large chunks amortize scheduling overhead but risk load
// imbalance when iteration costs or processor availabilities vary; small
// chunks balance load but pay overhead per chunk. The techniques divide
// into:
//
//   - Non-adaptive, static chunk rules: STATIC, SS (self-scheduling),
//     FSC (fixed-size chunking), GSS (guided self-scheduling),
//     TSS (trapezoid self-scheduling).
//   - Non-adaptive probabilistic rules: FAC (factoring, Hummel et al.)
//     and WF (weighted factoring, Hummel/Banicescu et al.), which
//     schedule batches of shrinking size.
//   - Adaptive rules: AWF-B and AWF-C (adaptive weighted factoring with
//     batch- and chunk-level weight updates, Carino & Banicescu) and AF
//     (adaptive factoring, Banicescu & Liu), which re-estimate
//     per-worker iteration moments at runtime.
//
// The paper's Stage-II sets are {STATIC} (naive) and {FAC, WF, AWF-B,
// AF} (robust); the remaining techniques serve as baselines and for
// ablation studies.
//
// A Scheduler is single-goroutine state driven by the Stage-II simulator
// (package sim): the simulator calls Next when a worker goes idle and
// Report when a chunk completes.
package dls

import (
	"fmt"
	"sort"
	"strings"
)

// Setup carries the loop and platform parameters a technique needs at
// creation time.
type Setup struct {
	// Iterations is the total number of loop iterations to schedule; it
	// must be positive.
	Iterations int
	// Workers is the number of processors executing the loop; it must be
	// positive.
	Workers int
	// Weights are optional a-priori relative worker speeds used by WF
	// and as the starting point of the AWF variants; nil means equal.
	// They are normalized internally to sum to Workers.
	Weights []float64
	// Overhead is the per-chunk scheduling overhead h in the same time
	// unit as iteration times; FSC uses it to size its chunks.
	Overhead float64
	// IterMean and IterStdDev are a-priori per-iteration execution
	// moments on a dedicated reference processor; FSC and the first AF
	// batch use them. Zero values disable those uses.
	IterMean   float64
	IterStdDev float64
	// MinChunk floors every dispatched chunk (values < 2 mean no
	// floor). Real DLS runtimes impose such a granularity to keep
	// chunks cache- and message-efficient; batched techniques apply the
	// floor within each batch, so tail chunks may still be smaller.
	MinChunk int
}

func (s Setup) validate() error {
	if s.Iterations <= 0 {
		return fmt.Errorf("dls: %d iterations", s.Iterations)
	}
	if s.Workers <= 0 {
		return fmt.Errorf("dls: %d workers", s.Workers)
	}
	if s.Weights != nil && len(s.Weights) != s.Workers {
		return fmt.Errorf("dls: %d weights for %d workers", len(s.Weights), s.Workers)
	}
	for i, w := range s.Weights {
		if w <= 0 {
			return fmt.Errorf("dls: weight %d is %v", i, w)
		}
	}
	return nil
}

// normWeights returns a copy of s.Weights normalized to sum to Workers,
// or equal weights if none were provided.
func (s Setup) normWeights() []float64 {
	w := make([]float64, s.Workers)
	if s.Weights == nil {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	sum := 0.0
	for _, v := range s.Weights {
		sum += v
	}
	for i, v := range s.Weights {
		w[i] = v * float64(s.Workers) / sum
	}
	return w
}

// Scheduler hands out chunks of loop iterations to workers. A Scheduler
// is not safe for concurrent use; the simulator serializes access (a
// real master would, too).
type Scheduler interface {
	// Name returns the technique name (e.g. "FAC").
	Name() string
	// Remaining returns the number of iterations not yet handed out.
	Remaining() int
	// Next returns the chunk size for the idle worker w in [0, Workers).
	// It returns 0 when no iterations remain; otherwise the result is in
	// [1, Remaining()] and Remaining decreases accordingly.
	Next(w int) int
	// Report informs the scheduler that worker w finished a chunk of
	// `size` iterations in `elapsed` time units (execution only, not
	// scheduling overhead). Adaptive techniques update their estimates;
	// others ignore it.
	Report(w, size int, elapsed float64)
}

// Technique is a named scheduler factory.
type Technique struct {
	// Name is the canonical technique name, e.g. "AWF-B".
	Name string
	// Adaptive reports whether the technique updates its decisions from
	// runtime measurements.
	Adaptive bool
	// New creates a fresh Scheduler for one loop execution. It returns
	// an error for invalid setups.
	New func(Setup) (Scheduler, error)
}

var registry = map[string]Technique{}

// register adds a technique; it panics on duplicates (programmer error).
func register(t Technique) {
	key := strings.ToUpper(t.Name)
	if _, dup := registry[key]; dup {
		panic("dls: duplicate technique " + t.Name)
	}
	registry[key] = t
}

// Get looks up a technique by case-insensitive name.
func Get(name string) (Technique, bool) {
	t, ok := registry[strings.ToUpper(name)]
	return t, ok
}

// All returns every registered technique sorted by name.
func All() []Technique {
	out := make([]Technique, 0, len(registry))
	for _, t := range registry {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the names of all registered techniques, sorted.
func Names() []string {
	ts := All()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}

// PaperRobustSet returns the paper's Stage-II robust technique set
// {FAC, WF, AWF-B, AF}, in paper order.
func PaperRobustSet() []Technique {
	names := []string{"FAC", "WF", "AWF-B", "AF"}
	out := make([]Technique, len(names))
	for i, n := range names {
		t, ok := Get(n)
		if !ok {
			panic("dls: missing paper technique " + n)
		}
		out[i] = t
	}
	return out
}

// clampChunk bounds a proposed chunk size to [1, remaining].
func clampChunk(k, remaining int) int {
	if remaining <= 0 {
		return 0
	}
	if k < 1 {
		k = 1
	}
	if k > remaining {
		k = remaining
	}
	return k
}

// floorChunk applies the Setup.MinChunk granularity then clamps to the
// remaining iterations.
func floorChunk(k, min, remaining int) int {
	if k < min {
		k = min
	}
	return clampChunk(k, remaining)
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// maxInt returns the larger of a and b.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

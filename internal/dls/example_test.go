package dls_test

import (
	"fmt"

	"cdsf/internal/dls"
)

// ExampleGet drives one scheduler by hand: factoring on 1000 iterations
// and 4 workers dispatches geometrically shrinking batches.
func ExampleGet() {
	tech, _ := dls.Get("FAC")
	s, err := tech.New(dls.Setup{Iterations: 1000, Workers: 4})
	if err != nil {
		panic(err)
	}
	for w := 0; w < 4; w++ {
		fmt.Printf("worker %d gets %d iterations\n", w, s.Next(w))
	}
	fmt.Printf("batch 2 chunk: %d\n", s.Next(0))
	// Output:
	// worker 0 gets 125 iterations
	// worker 1 gets 125 iterations
	// worker 2 gets 125 iterations
	// worker 3 gets 125 iterations
	// batch 2 chunk: 63
}

// ExampleTechnique_adaptive shows AWF-B re-weighting after measured
// imbalance: the worker that reported 4x slower execution receives a
// proportionally smaller share of the next batch.
func ExampleTechnique_adaptive() {
	tech, _ := dls.Get("AWF-B")
	s, _ := tech.New(dls.Setup{Iterations: 800, Workers: 2})
	k0 := s.Next(0)
	k1 := s.Next(1)
	s.Report(0, k0, float64(k0))   // worker 0: 1 time unit per iteration
	s.Report(1, k1, 4*float64(k1)) // worker 1: 4 time units per iteration
	fmt.Printf("batch 1: %d vs %d\n", k0, k1)
	fmt.Printf("batch 2: %d vs %d\n", s.Next(0), s.Next(1))
	// Output:
	// batch 1: 200 vs 200
	// batch 2: 160 vs 40
}

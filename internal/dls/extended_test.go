package dls

import (
	"testing"
)

func TestTFSSDecreasingBatches(t *testing.T) {
	s := newScheduler(t, "TFSS", Setup{Iterations: 1000, Workers: 4})
	// First batch = N/2 = 500 split into chunks of 125.
	if k := s.Next(0); k != 125 {
		t.Errorf("TFSS first chunk = %d, want 125", k)
	}
	// Drain and check batch chunk sizes never increase.
	s2 := newScheduler(t, "TFSS", Setup{Iterations: 1000, Workers: 4})
	prev := 1 << 30
	grew := 0
	for {
		k := s2.Next(0)
		if k == 0 {
			break
		}
		if k > prev {
			grew++
		}
		prev = k
	}
	if grew > 0 {
		t.Errorf("TFSS chunk sizes grew %d times", grew)
	}
}

func TestFISSIncreasingChunks(t *testing.T) {
	s := newScheduler(t, "FISS", Setup{Iterations: 4000, Workers: 4})
	var sizes []int
	for {
		k := s.Next(0)
		if k == 0 {
			break
		}
		sizes = append(sizes, k)
	}
	if len(sizes) < 3 {
		t.Fatalf("FISS used only %d chunks", len(sizes))
	}
	// Sizes are non-decreasing except possibly the final remainder.
	for i := 1; i < len(sizes)-1; i++ {
		if sizes[i] < sizes[i-1] {
			t.Errorf("FISS chunk %d shrank: %v", i, sizes)
			break
		}
	}
	if sizes[0] >= sizes[len(sizes)-2] {
		t.Errorf("FISS chunks did not grow: %v", sizes)
	}
}

func TestVISSGeometricGrowth(t *testing.T) {
	s := newScheduler(t, "VISS", Setup{Iterations: 10000, Workers: 4})
	k1 := s.Next(0)
	k2 := s.Next(0)
	k3 := s.Next(0)
	if !(k1 < k2 && k2 < k3) {
		t.Errorf("VISS chunks not growing: %d, %d, %d", k1, k2, k3)
	}
	ratio := float64(k2) / float64(k1)
	if ratio < 1.3 || ratio > 1.7 {
		t.Errorf("VISS growth ratio %.2f, want ~1.5", ratio)
	}
}

func TestAWFDIncludesOverheadInWeights(t *testing.T) {
	// Two equally fast workers, but worker 1's chunks carry no extra
	// cost while the overhead term h dominates small chunks. AWF-D adds
	// h to every measurement, AWF-B does not; with per-report equal
	// elapsed both must still converge to near-equal weights — the
	// distinguishing behaviour is that AWF-D's recorded times are
	// systematically larger. We check it still conserves iterations and
	// adapts to a genuinely slower worker.
	s := newScheduler(t, "AWF-D", Setup{Iterations: 4000, Workers: 2, Overhead: 5})
	iters := [2]int{}
	done := [2]bool{}
	for !done[0] || !done[1] {
		for w := 0; w < 2; w++ {
			if done[w] {
				continue
			}
			k := s.Next(w)
			if k == 0 {
				done[w] = true
				continue
			}
			iters[w] += k
			speed := 1.0
			if w == 1 {
				speed = 4
			}
			s.Report(w, k, float64(k)*speed)
		}
	}
	if iters[0]+iters[1] != 4000 {
		t.Fatalf("AWF-D scheduled %d iterations", iters[0]+iters[1])
	}
	if iters[0] <= iters[1] {
		t.Errorf("AWF-D did not favour the fast worker: %v", iters)
	}
}

func TestAWFTimestepLearnsAcrossSweeps(t *testing.T) {
	tech, ok := Get("AWF")
	if !ok {
		t.Fatal("AWF missing")
	}
	s, err := tech.New(Setup{Iterations: 1000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := s.(TimeStepper)
	if !ok {
		t.Fatal("AWF does not implement TimeStepper")
	}
	sweep := func() [2]int {
		iters := [2]int{}
		done := [2]bool{}
		for !done[0] || !done[1] {
			for w := 0; w < 2; w++ {
				if done[w] {
					continue
				}
				k := s.Next(w)
				if k == 0 {
					done[w] = true
					continue
				}
				iters[w] += k
				speed := 1.0
				if w == 1 {
					speed = 3
				}
				s.Report(w, k, float64(k)*speed)
			}
		}
		return iters
	}
	first := sweep()
	// Within the first sweep AWF uses the a-priori (equal) weights: the
	// split stays near 50/50 regardless of measured speeds.
	if ratio := float64(first[0]) / float64(first[1]); ratio > 1.4 {
		t.Errorf("AWF adapted mid-sweep: %v", first)
	}
	ts.EndStep()
	if s.Remaining() != 1000 {
		t.Fatalf("EndStep did not re-arm: remaining %d", s.Remaining())
	}
	second := sweep()
	// After the step boundary the learned 3x speed ratio applies.
	if ratio := float64(second[0]) / float64(second[1]); ratio < 1.8 {
		t.Errorf("AWF did not adapt across sweeps: %v (ratio %.2f)", second, ratio)
	}
}

func TestExtendedTechniquesConserve(t *testing.T) {
	for _, name := range []string{"AWF-D", "AWF-E", "AWF", "TFSS", "FISS", "VISS"} {
		for _, cfg := range []struct{ n, p int }{{1, 1}, {13, 4}, {997, 8}, {5000, 16}} {
			s := newScheduler(t, name, Setup{Iterations: cfg.n, Workers: cfg.p})
			chunks := drain(t, s, cfg.p, func(w, k int) float64 { return float64(k) })
			if got := sumChunks(chunks); got != cfg.n {
				t.Errorf("%s(%d,%d): scheduled %d", name, cfg.n, cfg.p, got)
			}
		}
	}
}

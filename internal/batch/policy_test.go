package batch

import (
	"context"
	"math"
	"testing"

	"cdsf/internal/ra"
	"cdsf/internal/stats"
)

func TestGreedyPolicy(t *testing.T) {
	take, start := GreedyPolicy{}.Next(3, 10, 12, true)
	if take != 3 || start != 10 {
		t.Errorf("greedy = (%d, %v)", take, start)
	}
}

func TestSizePolicyWaits(t *testing.T) {
	p := SizePolicy{Min: 3}
	take, start := p.Next(1, 10, 15, true)
	if take != 0 || start != 15 {
		t.Errorf("below threshold = (%d, %v), want wait until 15", take, start)
	}
	take, _ = p.Next(3, 20, 25, true)
	if take != 3 {
		t.Errorf("at threshold take = %d", take)
	}
	// No more arrivals: flush whatever is queued.
	take, _ = p.Next(1, 30, math.Inf(1), false)
	if take != 1 {
		t.Errorf("final flush take = %d", take)
	}
}

func TestWindowPolicyCollects(t *testing.T) {
	p := &WindowPolicy{Window: 100}
	// First call anchors at now=10; next arrival at 50 is inside the
	// window, so wait.
	take, start := p.Next(1, 10, 50, true)
	if take != 0 || start != 50 {
		t.Errorf("in-window = (%d, %v)", take, start)
	}
	// At 50 with the following arrival beyond the window: schedule at
	// the window end.
	take, start = p.Next(2, 50, 500, true)
	if take != 2 || start != 110 {
		t.Errorf("window close = (%d, %v), want (2, 110)", take, start)
	}
	// The anchor resets for the next batch.
	take, start = p.Next(1, 300, math.Inf(1), false)
	if take != 1 {
		t.Errorf("post-reset take = %d", take)
	}
	_ = start
}

func TestRunWithSizePolicyGrowsBatches(t *testing.T) {
	base := config()
	base.MaxBatch = 0
	base.Jobs = 30
	greedy, err := RunContext(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	sized := base
	sized.Policy = SizePolicy{Min: 4}
	rs, err := RunContext(context.Background(), sized)
	if err != nil {
		t.Fatal(err)
	}
	if rs.MeanBatchSize <= greedy.MeanBatchSize {
		t.Errorf("size policy batch %v <= greedy %v", rs.MeanBatchSize, greedy.MeanBatchSize)
	}
	total := 0
	for _, b := range rs.Batches {
		total += b.Jobs
	}
	if total != 30 {
		t.Errorf("size policy covered %d of 30 jobs", total)
	}
}

func TestRunWithWindowPolicy(t *testing.T) {
	cfg := config()
	cfg.MaxBatch = 0
	cfg.Jobs = 25
	cfg.Policy = &WindowPolicy{Window: 600}
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range res.Batches {
		total += b.Jobs
	}
	if total != 25 {
		t.Errorf("window policy covered %d of 25 jobs", total)
	}
	for _, j := range res.Jobs {
		if j.Wait() < 0 {
			t.Errorf("job %d negative wait", j.ID)
		}
	}
}

func TestRunPolicyRespectsArrivalOrderAndDeterminism(t *testing.T) {
	cfg := config()
	cfg.Policy = SizePolicy{Min: 2}
	a, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanTotal != b.MakespanTotal {
		t.Error("policy run not deterministic")
	}
	prev := -1
	for _, j := range a.Jobs {
		if j.Batch < prev {
			t.Error("jobs scheduled out of arrival order")
		}
		prev = j.Batch
	}
}

// TestPolicyComparison exercises all three policies on the same stream
// and confirms the expected wait/batch tradeoff direction.
func TestPolicyComparison(t *testing.T) {
	base := Config{
		Sys: testSystem(),
		Arrivals: ArrivalProcess{
			Interarrival: stats.NewExponential(1.0 / 200),
			Templates:    templates(),
		},
		Heuristic: ra.Greedy{},
		Deadline:  2500,
		Jobs:      40,
		Seed:      5,
	}
	greedy := base
	res1, err := RunContext(context.Background(), greedy)
	if err != nil {
		t.Fatal(err)
	}
	sized := base
	sized.Policy = SizePolicy{Min: 5}
	res2, err := RunContext(context.Background(), sized)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MeanBatchSize < res1.MeanBatchSize {
		t.Errorf("size(5) batches %v smaller than greedy %v",
			res2.MeanBatchSize, res1.MeanBatchSize)
	}
}

// Package batch models the operational substrate of Stage I: scientific
// applications arriving at random intervals in the queue of a resource
// manager, grouped into batches, allocated by a Stage-I heuristic, and
// executed batch-after-batch on the heterogeneous system (the paper's
// Section III.B narrative: "as the applications arrive, their
// assignment to available resources is made in batches", and the system
// makespan Psi "represents the time when the next batch of applications
// will require resources").
//
// The simulation advances in whole batches: while one batch executes,
// arrivals accumulate; when the batch completes (after its makespan),
// the queued applications form the next batch. Per-batch makespans are
// produced by a pluggable Executor, which lets the same queue dynamics
// run against the analytic Stage-I estimate or the full Stage-II
// simulator.
package batch

import (
	"context"
	"fmt"
	"math"

	"cdsf/internal/cache"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/rng"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

// Job is one application instance waiting in the resource manager's
// queue.
type Job struct {
	// ID is the arrival sequence number (0-based).
	ID int
	// App is the application template.
	App sysmodel.Application
	// Arrival is the simulated arrival time.
	Arrival float64
	// Start is the time the job's batch began executing.
	Start float64
	// Finish is the completion time of the job's batch (the paper's
	// batch-synchronous model frees all resources together).
	Finish float64
	// Batch is the index of the batch the job ran in.
	Batch int
}

// Wait returns the job's queueing delay (Start - Arrival).
func (j *Job) Wait() float64 { return j.Start - j.Arrival }

// ArrivalProcess generates the application stream.
type ArrivalProcess struct {
	// Interarrival is the distribution of the gaps between arrivals
	// (e.g. stats.Exponential for a Poisson stream).
	Interarrival stats.Dist
	// Templates are the application kinds arriving, sampled uniformly
	// ("different instances of the same application" per the paper).
	Templates []sysmodel.Application
}

// Executor turns an allocated batch into a makespan. Implementations:
// ExpectedExecutor (Stage-I analytics) and the Stage-II simulator
// adapter in package core.
type Executor interface {
	// Execute returns the batch makespan for the allocation. Executors
	// doing substantial work should observe ctx and return its error
	// when cancelled; cheap analytic executors may ignore it.
	Execute(ctx context.Context, sys *sysmodel.System, b sysmodel.Batch, alloc sysmodel.Allocation, seed uint64) (float64, error)
}

// ExpectedExecutor estimates the batch makespan analytically as the
// maximum of the per-application expected completion times under the
// system's availability PMFs.
type ExpectedExecutor struct{}

// Execute implements Executor; the analytic estimate is cheap enough
// that ctx is not consulted.
func (ExpectedExecutor) Execute(_ context.Context, sys *sysmodel.System, b sysmodel.Batch, alloc sysmodel.Allocation, _ uint64) (float64, error) {
	if err := alloc.Validate(sys, b); err != nil {
		return 0, err
	}
	max := 0.0
	for i := range b {
		as := alloc[i]
		m := b[i].CompletionPMF(as.Type, as.Procs, sys.Types[as.Type].Avail).Mean()
		if m > max {
			max = m
		}
	}
	return max, nil
}

// Config describes one resource-manager simulation.
type Config struct {
	// Sys is the heterogeneous system.
	Sys *sysmodel.System
	// Arrivals generates the job stream.
	Arrivals ArrivalProcess
	// Heuristic allocates each batch (Stage I).
	Heuristic ra.Heuristic
	// Deadline is the per-batch deadline handed to the heuristic,
	// measured from batch start.
	Deadline float64
	// MaxBatch caps the number of applications grouped into one batch;
	// <= 0 means unbounded (all queued jobs form the batch).
	MaxBatch int
	// Jobs is the total number of arrivals to simulate; must be > 0.
	Jobs int
	// Executor produces per-batch makespans; nil uses ExpectedExecutor.
	Executor Executor
	// Policy decides when queued jobs form a batch; nil schedules
	// everything queued immediately (GreedyPolicy).
	Policy Policy
	// Backend selects the PMF representation for each batch's Stage-I
	// search; the zero value is the exact sparse backend.
	Backend pmf.Backend
	// Cache, when non-nil, shares warm completion-time distributions
	// across batches that contain the same applications — common when
	// the arrival stream recycles templates. Results are bit-identical
	// with it on or off.
	Cache *cache.Cache
	// Seed drives arrivals, template choice, and executor seeds.
	Seed uint64
}

// BatchRecord summarizes one executed batch.
type BatchRecord struct {
	// Index is the batch sequence number.
	Index int
	// Jobs is the number of applications in the batch.
	Jobs int
	// Start and Makespan delimit the execution.
	Start, Makespan float64
	// Phi1 is the Stage-I robustness of the chosen allocation.
	Phi1 float64
	// MetDeadline reports Makespan <= Deadline.
	MetDeadline bool
}

// Result aggregates a resource-manager simulation.
type Result struct {
	// Jobs holds every simulated job with its timing.
	Jobs []Job
	// Batches holds one record per executed batch.
	Batches []BatchRecord
	// MeanWait is the mean job queueing delay.
	MeanWait float64
	// MeanBatchSize is the mean number of jobs per batch.
	MeanBatchSize float64
	// DeadlineRate is the fraction of batches meeting the deadline.
	DeadlineRate float64
	// MakespanTotal is the completion time of the last batch.
	MakespanTotal float64
}

// RunContext is Run under a context: cancellation is checked before
// each batch is scheduled, the Stage-I heuristic runs through
// ra.SolveContext, and ctx reaches the Executor, so a cancelled
// simulation stops at a batch boundary (or inside a cancellation-aware
// executor) and returns an error wrapping ctx.Err().
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Sys == nil {
		return nil, fmt.Errorf("batch: nil system")
	}
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("batch: %d jobs", cfg.Jobs)
	}
	if len(cfg.Arrivals.Templates) == 0 {
		return nil, fmt.Errorf("batch: no application templates")
	}
	if cfg.Arrivals.Interarrival == nil {
		return nil, fmt.Errorf("batch: nil interarrival distribution")
	}
	if cfg.Heuristic == nil {
		return nil, fmt.Errorf("batch: nil heuristic")
	}
	exec := cfg.Executor
	if exec == nil {
		exec = ExpectedExecutor{}
	}
	r := rng.New(cfg.Seed)

	// Generate the arrival stream.
	jobs := make([]Job, cfg.Jobs)
	now := 0.0
	for i := range jobs {
		now += cfg.Arrivals.Interarrival.Sample(r)
		tmpl := cfg.Arrivals.Templates[r.Intn(len(cfg.Arrivals.Templates))]
		jobs[i] = Job{ID: i, App: tmpl, Arrival: now}
	}

	policy := cfg.Policy
	if policy == nil {
		policy = GreedyPolicy{}
	}

	res := &Result{}
	clock := 0.0
	next := 0 // first unscheduled job
	for next < len(jobs) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("batch: canceled after %d/%d jobs in %d batches: %w",
				next, len(jobs), len(res.Batches), err)
		}
		// The resource manager waits until at least one job is queued.
		if jobs[next].Arrival > clock {
			clock = jobs[next].Arrival
		}
		// Let the batching policy decide how many queued jobs to take,
		// possibly waiting for more arrivals first.
		var end int
		for {
			end = next
			for end < len(jobs) && jobs[end].Arrival <= clock {
				end++
			}
			haveMore := end < len(jobs)
			nextArrival := math.Inf(1)
			if haveMore {
				nextArrival = jobs[end].Arrival
			}
			take, start := policy.Next(end-next, clock, nextArrival, haveMore)
			if start > clock {
				clock = start
			}
			if take > 0 {
				if end > next+take {
					end = next + take
				}
				break
			}
			if !haveMore {
				// Nothing more will arrive; schedule what is queued.
				break
			}
		}
		if cfg.MaxBatch > 0 && end-next > cfg.MaxBatch {
			end = next + cfg.MaxBatch
		}
		// A batch can never exceed the processor count: every
		// application needs at least one processor for the whole batch.
		if limit := cfg.Sys.TotalProcessors(); end-next > limit {
			end = next + limit
		}
		b := make(sysmodel.Batch, 0, end-next)
		for i := next; i < end; i++ {
			b = append(b, jobs[i].App)
		}
		prob := &ra.Problem{Sys: cfg.Sys, Batch: b, Deadline: cfg.Deadline, Backend: cfg.Backend, Cache: cfg.Cache}
		alloc, err := ra.SolveContext(ctx, cfg.Heuristic, prob)
		if err != nil {
			return nil, fmt.Errorf("batch %d: %w", len(res.Batches), err)
		}
		phi, err := prob.Objective(alloc)
		if err != nil {
			return nil, err
		}
		mk, err := exec.Execute(ctx, cfg.Sys, b, alloc, r.Uint64())
		if err != nil {
			return nil, err
		}
		rec := BatchRecord{
			Index:       len(res.Batches),
			Jobs:        end - next,
			Start:       clock,
			Makespan:    mk,
			Phi1:        phi,
			MetDeadline: mk <= cfg.Deadline,
		}
		for i := next; i < end; i++ {
			jobs[i].Start = clock
			jobs[i].Finish = clock + mk
			jobs[i].Batch = rec.Index
		}
		res.Batches = append(res.Batches, rec)
		clock += mk
		next = end
	}

	res.Jobs = jobs
	res.MakespanTotal = clock
	sumWait, met := 0.0, 0
	for i := range jobs {
		sumWait += jobs[i].Wait()
	}
	for _, b := range res.Batches {
		if b.MetDeadline {
			met++
		}
	}
	res.MeanWait = sumWait / float64(len(jobs))
	res.MeanBatchSize = float64(len(jobs)) / float64(len(res.Batches))
	res.DeadlineRate = float64(met) / float64(len(res.Batches))
	return res, nil
}

package batch

import (
	"fmt"
)

// Policy decides how many of the queued jobs form the next batch when
// the system becomes free. The paper only says assignments are "made in
// batches"; operationally the grouping rule trades queueing delay
// against allocation quality (bigger batches give the Stage-I heuristic
// more freedom but makes early arrivals wait).
type Policy interface {
	// Next returns how many of the `queued` jobs (all of which have
	// arrived by `now`) to schedule, in [1, queued], and the time at
	// which to start the batch (>= now). Policies that want to wait for
	// more arrivals return start > now and may be called again.
	Next(queued int, now float64, nextArrival float64, haveMore bool) (take int, start float64)
	// Name identifies the policy in reports.
	Name() string
}

// GreedyPolicy schedules everything queued immediately — the default
// behaviour (bounded by Config.MaxBatch and the processor count).
type GreedyPolicy struct{}

// Name returns "greedy".
func (GreedyPolicy) Name() string { return "greedy" }

// Next implements Policy.
func (GreedyPolicy) Next(queued int, now float64, _ float64, _ bool) (int, float64) {
	return queued, now
}

// SizePolicy waits until at least Min jobs are queued (or no more
// arrivals are coming), then schedules them all. Larger minimums give
// the Stage-I heuristic more to optimize at the cost of waiting.
type SizePolicy struct {
	// Min is the batch-size threshold; it must be positive.
	Min int
}

// Name returns "size(Min)".
func (p SizePolicy) Name() string { return fmt.Sprintf("size(%d)", p.Min) }

// Next implements Policy.
func (p SizePolicy) Next(queued int, now float64, nextArrival float64, haveMore bool) (int, float64) {
	if p.Min < 1 {
		return queued, now
	}
	if queued >= p.Min || !haveMore {
		return queued, now
	}
	// Wait for the next arrival before deciding again.
	return 0, nextArrival
}

// WindowPolicy collects arrivals for a fixed time window after the
// first queued job, then schedules everything that arrived.
type WindowPolicy struct {
	// Window is the collection window length; it must be positive.
	Window float64
	// anchor is the arrival time of the first job of the batch being
	// collected; managed by Run.
	anchor   float64
	anchored bool
}

// Name returns "window(W)".
func (p *WindowPolicy) Name() string { return fmt.Sprintf("window(%g)", p.Window) }

// Next implements Policy.
func (p *WindowPolicy) Next(queued int, now float64, nextArrival float64, haveMore bool) (int, float64) {
	if !p.anchored {
		p.anchor = now
		p.anchored = true
	}
	deadline := p.anchor + p.Window
	if now >= deadline || !haveMore || nextArrival > deadline {
		p.anchored = false
		return queued, maxF(now, deadline)
	}
	return 0, nextArrival
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

package batch

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// A pre-cancelled context stops the batch stream between jobs with a
// partial-progress error wrapping the cause.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, config())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "jobs") {
		t.Errorf("error %q lacks partial-progress count", err)
	}
}

package batch_test

import (
	"context"
	"fmt"

	"cdsf/internal/batch"
	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

// ExampleRun simulates a resource manager: Poisson arrivals grouped
// into batches, each allocated by a Stage-I heuristic and executed
// batch-synchronously.
func ExampleRunContext() {
	sys := &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "T1", Count: 8, Avail: pmf.Point(1)},
	}}
	tmpl := sysmodel.Application{
		Name: "job", SerialIters: 10, ParallelIters: 990,
		ExecTime: []pmf.PMF{pmf.Point(800)},
	}
	res, err := batch.RunContext(context.Background(), batch.Config{
		Sys: sys,
		Arrivals: batch.ArrivalProcess{
			Interarrival: stats.NewExponential(1.0 / 100),
			Templates:    []sysmodel.Application{tmpl},
		},
		Heuristic: ra.Greedy{},
		Deadline:  1000,
		MaxBatch:  4,
		Jobs:      12,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("all jobs scheduled: %v\n", len(res.Jobs) == 12)
	fmt.Printf("batches executed: %v\n", len(res.Batches) >= 3)
	fmt.Printf("waits non-negative: %v\n", res.MeanWait >= 0)
	// Output:
	// all jobs scheduled: true
	// batches executed: true
	// waits non-negative: true
}

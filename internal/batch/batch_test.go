package batch

import (
	"context"
	"fmt"
	"testing"

	"cdsf/internal/pmf"
	"cdsf/internal/ra"
	"cdsf/internal/stats"
	"cdsf/internal/sysmodel"
)

func testSystem() *sysmodel.System {
	return &sysmodel.System{Types: []sysmodel.ProcType{
		{Name: "T1", Count: 4, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.75, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
		{Name: "T2", Count: 8, Avail: pmf.MustNew([]pmf.Pulse{
			{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}})},
	}}
}

func templates() []sysmodel.Application {
	mk := func(mu1, mu2 float64) sysmodel.Application {
		return sysmodel.Application{
			Name:          "tmpl",
			SerialIters:   50,
			ParallelIters: 950,
			ExecTime: []pmf.PMF{
				pmf.Discretize(stats.NewNormal(mu1, mu1/10), 40),
				pmf.Discretize(stats.NewNormal(mu2, mu2/10), 40),
			},
		}
	}
	return []sysmodel.Application{mk(800, 1200), mk(1500, 1000), mk(2200, 2600)}
}

func config() Config {
	return Config{
		Sys: testSystem(),
		Arrivals: ArrivalProcess{
			Interarrival: stats.NewExponential(1.0 / 300),
			Templates:    templates(),
		},
		Heuristic: ra.Greedy{},
		Deadline:  2500,
		MaxBatch:  4,
		Jobs:      40,
		Seed:      1,
	}
}

func TestRunBasicInvariants(t *testing.T) {
	res, err := RunContext(context.Background(), config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 40 {
		t.Fatalf("got %d jobs", len(res.Jobs))
	}
	if len(res.Batches) == 0 {
		t.Fatal("no batches")
	}
	totalJobs := 0
	prevStart := -1.0
	for _, b := range res.Batches {
		if b.Jobs <= 0 || b.Jobs > 4 {
			t.Errorf("batch %d has %d jobs (max 4)", b.Index, b.Jobs)
		}
		if b.Start <= prevStart {
			t.Errorf("batch %d start %v not after previous %v", b.Index, b.Start, prevStart)
		}
		if b.Makespan <= 0 {
			t.Errorf("batch %d makespan %v", b.Index, b.Makespan)
		}
		if b.Phi1 < 0 || b.Phi1 > 1 {
			t.Errorf("batch %d phi1 %v", b.Index, b.Phi1)
		}
		prevStart = b.Start
		totalJobs += b.Jobs
	}
	if totalJobs != 40 {
		t.Errorf("batches cover %d jobs", totalJobs)
	}
	for _, j := range res.Jobs {
		if j.Wait() < 0 {
			t.Errorf("job %d has negative wait %v", j.ID, j.Wait())
		}
		if j.Finish <= j.Start {
			t.Errorf("job %d finish %v <= start %v", j.ID, j.Finish, j.Start)
		}
		if j.Start < j.Arrival {
			t.Errorf("job %d started before arrival", j.ID)
		}
	}
	if res.DeadlineRate < 0 || res.DeadlineRate > 1 {
		t.Errorf("deadline rate %v", res.DeadlineRate)
	}
	if res.MeanBatchSize <= 0 || res.MeanBatchSize > 4 {
		t.Errorf("mean batch size %v", res.MeanBatchSize)
	}
	if res.MakespanTotal <= 0 {
		t.Errorf("total makespan %v", res.MakespanTotal)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := RunContext(context.Background(), config())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), config())
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanTotal != b.MakespanTotal || len(a.Batches) != len(b.Batches) {
		t.Error("batch simulation not deterministic")
	}
}

func TestUnboundedBatch(t *testing.T) {
	cfg := config()
	cfg.MaxBatch = 0
	cfg.Jobs = 10
	// Slow arrivals relative to service: batches stay small anyway.
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range res.Batches {
		total += b.Jobs
	}
	if total != 10 {
		t.Errorf("batches cover %d of 10 jobs", total)
	}
}

func TestFasterArrivalsGrowBatches(t *testing.T) {
	slow := config()
	slow.MaxBatch = 0
	slow.Arrivals.Interarrival = stats.NewExponential(1.0 / 2000)
	fast := config()
	fast.MaxBatch = 0
	fast.Arrivals.Interarrival = stats.NewExponential(1.0 / 50)
	rs, err := RunContext(context.Background(), slow)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := RunContext(context.Background(), fast)
	if err != nil {
		t.Fatal(err)
	}
	if rf.MeanBatchSize <= rs.MeanBatchSize {
		t.Errorf("faster arrivals did not grow batches: %v vs %v",
			rf.MeanBatchSize, rs.MeanBatchSize)
	}
}

func TestExpectedExecutorIsMaxOfMeans(t *testing.T) {
	sys := testSystem()
	b := sysmodel.Batch{templates()[0], templates()[2]}
	al := sysmodel.Allocation{{Type: 0, Procs: 2}, {Type: 1, Procs: 4}}
	mk, err := ExpectedExecutor{}.Execute(context.Background(), sys, b, al, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := range b {
		m := b[i].CompletionPMF(al[i].Type, al[i].Procs, sys.Types[al[i].Type].Avail).Mean()
		if m > want {
			want = m
		}
	}
	if mk != want {
		t.Errorf("executor makespan %v != max mean %v", mk, want)
	}
}

func TestValidationErrors(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Sys = nil },
		func(c *Config) { c.Jobs = 0 },
		func(c *Config) { c.Arrivals.Templates = nil },
		func(c *Config) { c.Arrivals.Interarrival = nil },
		func(c *Config) { c.Heuristic = nil },
	}
	for i, mod := range mods {
		cfg := config()
		mod(&cfg)
		if _, err := RunContext(context.Background(), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

type failingExecutor struct{}

func (failingExecutor) Execute(context.Context, *sysmodel.System, sysmodel.Batch, sysmodel.Allocation, uint64) (float64, error) {
	return 0, fmt.Errorf("boom")
}

func TestExecutorErrorPropagates(t *testing.T) {
	cfg := config()
	cfg.Executor = failingExecutor{}
	if _, err := RunContext(context.Background(), cfg); err == nil {
		t.Error("executor error swallowed")
	}
}

// Package sim is the Stage-II runtime substrate: a discrete-event
// simulation of one data-parallel application executing its loop on a
// group of processors under a dynamic loop scheduling technique and
// time-varying processor availability.
//
// The execution model follows the paper's Stage-II narrative. The
// application's serial iterations run first on the group's master
// (worker 0). The parallel iterations are then scheduled by the chosen
// DLS technique: whenever a worker goes idle the master hands it a chunk
// whose size the technique decides; dispatching a chunk costs a fixed
// scheduling overhead; executing k iterations requires the sum of k
// stochastic iteration times of dedicated work, delivered at the
// worker's current fractional availability (a processor that is 50%
// available computes at half speed). The application's makespan is the
// time the last chunk completes.
//
// This simulator substitutes for the authors' MPI runtime and
// historically-loaded testbed (see DESIGN.md): availability processes
// from package availability reproduce the stochastic load, and the
// chunk-level dynamics are exactly what distinguishes STATIC from the
// robust DLS techniques.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"time"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/metrics"
	"cdsf/internal/rng"
	"cdsf/internal/stats"
	"cdsf/internal/tracing"
)

// Config describes one simulated application execution.
type Config struct {
	// SerialIters run on worker 0 before the parallel loop; may be 0.
	SerialIters int
	// ParallelIters are scheduled by the DLS technique; must be > 0.
	ParallelIters int
	// Workers is the number of processors in the allocated group.
	Workers int
	// IterTime is the distribution of one iteration's dedicated
	// execution time. Draws are clamped to be strictly positive.
	IterTime stats.Dist
	// IterProfile optionally shapes the parallel loop's costs across
	// the iteration space (see Profile); nil means a flat loop.
	// Iterations are dispatched in index order, so chunk costs follow
	// the profile's gradient.
	IterProfile Profile
	// Avail supplies each worker's availability process.
	Avail availability.Model
	// Technique schedules the parallel loop.
	Technique dls.Technique
	// Weights are optional a-priori worker weights handed to the
	// technique (used by WF and as the AWF starting point).
	Weights []float64
	// WeightsFromAvail, when true and Weights is nil, derives the
	// a-priori weights from each worker's availability at time zero —
	// the "known current load" assumption behind weighted factoring in
	// non-dedicated systems.
	WeightsFromAvail bool
	// BestMaster, when true, runs the serial phase on the worker with
	// the highest availability at time zero instead of worker 0 — the
	// resource manager designating the least-loaded processor of the
	// group as its coordinator when staging the application.
	BestMaster bool
	// Overhead is the scheduling cost charged per dispatched chunk.
	Overhead float64
	// TimeSteps is the number of sweeps over the iteration space
	// (time-stepping applications); 0 or 1 means a single sweep. For
	// multi-sweep runs the serial phase executes once per sweep, and
	// schedulers implementing dls.TimeStepper (the original AWF) carry
	// their learned state across sweeps; other techniques restart
	// fresh each sweep.
	TimeSteps int
	// Release delays the run's start: a DAG batch application is
	// blocked until all its predecessors have finished, so its clock
	// starts at Release and the reported Makespan is the absolute
	// finish time (Release included). Zero is the independent-batch
	// behavior. Must be non-negative and finite.
	Release float64
	// Releases optionally gives RunMany a per-repetition release time
	// (length must equal the repetition count): repetition i starts at
	// Releases[i], which is how core couples a DAG's replications —
	// each repetition's release is the max of its predecessors' finish
	// times in that same repetition. Nil applies Release to every
	// repetition.
	Releases []float64
	// Seed drives all randomness of the run.
	Seed uint64
	// CollectChunks enables the per-chunk log in the result (costs
	// memory on large runs).
	CollectChunks bool
	// Metrics optionally receives run-level observability counters
	// (events processed, chunks dispatched, busy/idle/overhead time,
	// heap operations, wall time). Nil falls back to metrics.Default(),
	// which is itself nil unless a CLI installed one — the no-op path.
	// Instrumentation never touches the simulation's rng streams or
	// event order, so seeded results are identical with metrics on or
	// off.
	Metrics *metrics.Registry
	// Tracer optionally receives the run's simulated-time timeline:
	// per-worker lanes of busy/overhead/idle spans built from the chunk
	// log under TraceScope. Nil falls back to tracing.Default(). Spans
	// derive only from the finished result, so seeded runs are
	// bit-identical with tracing on or off.
	Tracer *tracing.Tracer
	// TraceScope prefixes the emitted lane names (lanes are
	// TraceScope + "/w<worker>"); empty means "run". Hierarchical
	// scopes like "scenario/case/app" thread the Stage-II nesting into
	// the trace.
	TraceScope string
	// Progress optionally receives replication progress: RunMany plans
	// its repetitions on this board and marks each completion. Nil
	// falls back to tracing.DefaultProgress(), the process-wide board
	// the CLIs install with -debug-addr; the scheduling service wires a
	// per-job board here instead so concurrent jobs report separately.
	Progress *tracing.Progress
	// noTrace suppresses the tracing.Default() fallback; RunMany sets
	// it on all repetitions but the first so a Monte-Carlo batch traces
	// one representative timeline instead of flooding the span buffer.
	noTrace bool
	// gated marks a run as precedence-gated (part of a DAG batch) even
	// when its release time is zero, so the sim.dag.* metrics count
	// source applications too. RunMany sets it when Releases is
	// non-nil.
	gated bool
}

// progress resolves the effective progress board for a run.
func (c *Config) progress() *tracing.Progress {
	if c.Progress != nil {
		return c.Progress
	}
	return tracing.DefaultProgress()
}

// tracer resolves the effective tracer for a run.
func (c *Config) tracer() *tracing.Tracer {
	if c.noTrace {
		return nil
	}
	if c.Tracer != nil {
		return c.Tracer
	}
	return tracing.Default()
}

// registry resolves the effective metrics registry for a run.
func (c *Config) registry() *metrics.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return metrics.Default()
}

func (c *Config) validate() error {
	if c.ParallelIters <= 0 {
		return fmt.Errorf("sim: %d parallel iterations", c.ParallelIters)
	}
	if c.SerialIters < 0 {
		return fmt.Errorf("sim: %d serial iterations", c.SerialIters)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("sim: %d workers", c.Workers)
	}
	if c.IterTime == nil {
		return fmt.Errorf("sim: nil iteration time distribution")
	}
	if c.Avail == nil {
		return fmt.Errorf("sim: nil availability model")
	}
	if c.Technique.New == nil {
		return fmt.Errorf("sim: technique %q has no factory", c.Technique.Name)
	}
	if c.Overhead < 0 {
		return fmt.Errorf("sim: negative overhead %v", c.Overhead)
	}
	if c.Release < 0 || math.IsNaN(c.Release) || math.IsInf(c.Release, 0) {
		return fmt.Errorf("sim: invalid release time %v", c.Release)
	}
	return nil
}

// ChunkRecord logs one dispatched chunk.
type ChunkRecord struct {
	Worker  int
	Start   float64 // dispatch time (before overhead)
	Size    int
	Elapsed float64 // execution time excluding overhead
}

// Result reports one simulated run.
type Result struct {
	// Makespan is the absolute completion time of the whole
	// application: the release time (if any), the serial phase, and
	// the parallel loop.
	Makespan float64
	// Release echoes Config.Release: the time the application spent
	// blocked on its predecessors before starting.
	Release float64
	// SerialTime is the duration of the serial phase.
	SerialTime float64
	// ParallelTime is Makespan - Release - SerialTime.
	ParallelTime float64
	// NumChunks counts dispatched chunks.
	NumChunks int
	// WorkerBusy[i] is the total execution time (excluding overhead)
	// spent by worker i in the parallel phase.
	WorkerBusy []float64
	// WorkerIters[i] is the number of parallel iterations executed by
	// worker i.
	WorkerIters []int
	// Imbalance is (max - min)/max of the per-worker finish times of the
	// parallel phase, the classic load-imbalance metric (0 = perfect).
	Imbalance float64
	// Chunks is the per-chunk log when Config.CollectChunks is set.
	Chunks []ChunkRecord
}

// event is a worker becoming idle at time t.
type event struct {
	t      float64
	worker int
}

type eventQueue []event

func (q eventQueue) Len() int      { return len(q) }
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].worker < q[j].worker // deterministic tie-break
}
func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// drawWork returns the dedicated-time cost of k iterations as the sum of
// k positive draws from dist.
func drawWork(dist stats.Dist, k int, r *rng.Source) float64 {
	w := 0.0
	for i := 0; i < k; i++ {
		x := dist.Sample(r)
		for x <= 0 {
			x = dist.Sample(r)
		}
		w += x
	}
	return w
}

// drawProfiledWork returns the cost of iterations [start, start+k) of
// an n-iteration loop, applying the profile multiplier per iteration.
func drawProfiledWork(dist stats.Dist, profile Profile, start, k, n int, r *rng.Source) float64 {
	if profile == nil {
		return drawWork(dist, k, r)
	}
	w := 0.0
	for i := 0; i < k; i++ {
		x := dist.Sample(r)
		for x <= 0 {
			x = dist.Sample(r)
		}
		w += x * profile(start+i, n)
	}
	return w
}

// simCheckStride is how many events the simulation loop processes
// between cancellation checks. Checking ctx.Err() is a single atomic
// load, but keeping it off the per-event path preserves the event
// loop's throughput; at typical event rates a stride of 1024 bounds
// the cancellation latency well below a millisecond.
const simCheckStride = 1024

// RunContext executes one simulation under ctx. The event loop checks
// for cancellation every simCheckStride events; a cancelled run returns
// an error wrapping ctx.Err() and no result. Cancellation checks never
// touch the run's rng streams, so an uncancelled seeded run is
// bit-identical to Run.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	// An active tracer needs the chunk log to build the worker lanes;
	// collect it internally and restore the caller's view afterwards so
	// the returned Result is identical with tracing on or off.
	tr := cfg.tracer()
	collectRequested := cfg.CollectChunks
	if tr != nil {
		cfg.CollectChunks = true
	}
	reg := cfg.registry()
	var t0 time.Time
	if reg != nil {
		t0 = time.Now()
	}
	root := rng.New(cfg.Seed)
	availRng := root.Split()
	workRng := root.Split()

	// Group-scoped availability models (e.g. availability.SharedLoad)
	// reset their shared state per run so repetitions stay independent.
	// Detection follows the Wrapper chain, so decorated models keep the
	// contract.
	if gr, ok := availability.AsGroupScoped(cfg.Avail); ok {
		gr.ResetGroup()
	}
	procs := make([]availability.Process, cfg.Workers)
	for i := range procs {
		procs[i] = cfg.Avail.NewProcess(availRng)
	}

	weights := cfg.Weights
	if weights == nil && cfg.WeightsFromAvail {
		weights = make([]float64, cfg.Workers)
		for i, p := range procs {
			weights[i] = p.At(cfg.Release)
		}
	}

	newSched := func() (dls.Scheduler, error) {
		return cfg.Technique.New(dls.Setup{
			Iterations: cfg.ParallelIters,
			Workers:    cfg.Workers,
			Weights:    weights,
			Overhead:   cfg.Overhead,
			IterMean:   cfg.IterTime.Mean(),
			IterStdDev: sqrtOrZero(cfg.IterTime.Var()),
		})
	}
	sched, err := newSched()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Release:     cfg.Release,
		WorkerBusy:  make([]float64, cfg.Workers),
		WorkerIters: make([]int, cfg.Workers),
	}

	steps := cfg.TimeSteps
	if steps < 1 {
		steps = 1
	}
	var st runStats
	// A precedence-gated run starts its clock at the release time: the
	// application was blocked until every predecessor finished, so the
	// availability processes, the serial phase, and every chunk live at
	// absolute simulated times past the release.
	clock := cfg.Release
	for step := 0; step < steps; step++ {
		if step > 0 {
			// A time-stepping scheduler (the original AWF) carries its
			// learned weights into the next sweep; every other
			// technique restarts fresh.
			if ts, ok := sched.(dls.TimeStepper); ok {
				ts.EndStep()
			} else if sched, err = newSched(); err != nil {
				return nil, err
			}
		}

		// Serial phase on the group master (worker 0, or the currently
		// most available worker under BestMaster).
		master := 0
		if cfg.BestMaster {
			for i := 1; i < cfg.Workers; i++ {
				if procs[i].At(clock) > procs[master].At(clock) {
					master = i
				}
			}
		}
		start := clock
		if cfg.SerialIters > 0 {
			work := drawWork(cfg.IterTime, cfg.SerialIters, workRng)
			start = procs[master].FinishTime(clock, work)
		}
		res.SerialTime += start - clock

		clock, err = runSweep(ctx, &cfg, sched, procs, workRng, start, res, &st)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}

	res.Makespan = clock
	res.ParallelTime = clock - cfg.Release - res.SerialTime
	if reg != nil {
		flushRunMetrics(reg, &cfg, res, &st, time.Since(t0))
	}
	if tr != nil {
		emitRunSpans(tr, &cfg, res)
		if !collectRequested {
			res.Chunks = nil
		}
	}
	return res, nil
}

// emitRunSpans publishes one run's simulated-time timeline: the serial
// phase on a master lane plus the per-worker busy/overhead/idle lanes
// of the chunk log. All spans derive from the finished Result, never
// from the simulation's rng streams, so enabling tracing cannot
// perturb seeded outputs.
func emitRunSpans(tr *tracing.Tracer, cfg *Config, res *Result) {
	scope := cfg.TraceScope
	if scope == "" {
		scope = "run"
	}
	if res.Release > 0 {
		// The release gate of a DAG batch: simulated time spent blocked
		// on predecessors, shown on its own lane so the release schedule
		// is visible next to the worker lanes.
		tr.Add(tracing.Span{Clock: tracing.Sim, Lane: scope + "/blocked",
			Name: "blocked on predecessors", Cat: "blocked", Start: 0, Dur: res.Release})
	}
	if res.SerialTime > 0 {
		tr.Add(tracing.Span{Clock: tracing.Sim, Lane: scope + "/serial",
			Name: "serial phase", Cat: "serial", Start: res.Release, Dur: res.SerialTime})
	}
	chunks := make([]tracing.Chunk, len(res.Chunks))
	for i, c := range res.Chunks {
		chunks[i] = tracing.Chunk{Worker: c.Worker, Start: c.Start, Size: c.Size, Elapsed: c.Elapsed}
	}
	tr.AddWorkerLanes(scope, chunks, cfg.Overhead)
}

// runStats accumulates one run's instrumentation counts in plain
// integers; Run flushes them to the registry once at the end, keeping
// atomic traffic out of the event loop.
type runStats struct {
	events  int64
	heapOps int64
}

// utilizationBounds buckets per-worker busy-time fractions of the
// parallel phase.
var utilizationBounds = []float64{0.25, 0.5, 0.75, 0.9, 1.0}

// flushRunMetrics publishes one run's counts and times to reg. All
// values derive from the finished Result, never from the simulation's
// rng streams, so enabling metrics cannot perturb seeded outputs.
func flushRunMetrics(reg *metrics.Registry, cfg *Config, res *Result, st *runStats, wall time.Duration) {
	reg.Counter("sim.runs").Inc()
	if cfg.gated || cfg.Release > 0 {
		// DAG release schedule: one "ready" event per gated run, plus
		// the simulated time the application spent blocked on its
		// predecessors before that.
		reg.Counter("sim.dag.ready").Inc()
		reg.Gauge("sim.dag.blocked_time").Add(cfg.Release)
	}
	reg.Counter("sim.events").Add(st.events)
	reg.Counter("sim.heap_ops").Add(st.heapOps)
	reg.Counter("sim.chunks").Add(int64(res.NumChunks))
	iters := 0
	for _, k := range res.WorkerIters {
		iters += k
	}
	reg.Counter("sim.iterations").Add(int64(iters))

	busy := 0.0
	for _, b := range res.WorkerBusy {
		busy += b
	}
	overhead := float64(res.NumChunks) * cfg.Overhead
	reg.Gauge("sim.busy_time").Add(busy)
	reg.Gauge("sim.overhead_time").Add(overhead)
	reg.Gauge("sim.serial_time").Add(res.SerialTime)
	// Idle time is what remains of the workers' parallel-phase wall
	// clock after execution and dispatch overhead.
	if idle := float64(cfg.Workers)*res.ParallelTime - busy - overhead; idle > 0 {
		reg.Gauge("sim.idle_time").Add(idle)
	}
	if res.ParallelTime > 0 {
		h := reg.Histogram("sim.worker_utilization", utilizationBounds)
		for _, b := range res.WorkerBusy {
			h.Observe(b / res.ParallelTime)
		}
	}
	reg.Timer("sim.run_wall").Observe(wall)
}

// runSweep executes one full pass of the parallel loop starting all
// workers at `start`, returning the sweep's makespan. It updates the
// aggregate counters and the Imbalance metric (of the latest sweep) in
// res. Cancellation is checked every simCheckStride events; a cancelled
// sweep abandons the event queue and returns ctx's error.
func runSweep(ctx context.Context, cfg *Config, sched dls.Scheduler, procs []availability.Process, workRng *rng.Source, start float64, res *Result, st *runStats) (float64, error) {
	q := make(eventQueue, 0, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		q = append(q, event{t: start, worker: w})
	}
	heap.Init(&q)
	st.heapOps += int64(cfg.Workers)

	finish := make([]float64, cfg.Workers)
	for i := range finish {
		finish[i] = start
	}
	// pending[w] holds the chunk worker w is executing; its Report is
	// delivered when the completion event is popped, so the scheduler
	// only ever sees measurements that have happened in simulated time.
	type pendingChunk struct {
		size    int
		elapsed float64
	}
	pending := make([]*pendingChunk, cfg.Workers)

	makespan := start
	nextIter := 0 // iterations are dispatched in index order
	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		st.events++
		st.heapOps++
		if st.events%simCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		if p := pending[e.worker]; p != nil {
			sched.Report(e.worker, p.size, p.elapsed)
			pending[e.worker] = nil
		}
		k := sched.Next(e.worker)
		if k == 0 {
			// Worker done; it leaves the queue.
			continue
		}
		work := drawProfiledWork(cfg.IterTime, cfg.IterProfile, nextIter, k, cfg.ParallelIters, workRng)
		nextIter += k
		execStart := e.t + cfg.Overhead
		end := procs[e.worker].FinishTime(execStart, work)
		elapsed := end - execStart
		pending[e.worker] = &pendingChunk{size: k, elapsed: elapsed}

		res.NumChunks++
		res.WorkerBusy[e.worker] += elapsed
		res.WorkerIters[e.worker] += k
		if cfg.CollectChunks {
			res.Chunks = append(res.Chunks, ChunkRecord{
				Worker: e.worker, Start: e.t, Size: k, Elapsed: elapsed,
			})
		}
		finish[e.worker] = end
		if end > makespan {
			makespan = end
		}
		heap.Push(&q, event{t: end, worker: e.worker})
		st.heapOps++
	}

	maxF, minF := finish[0], finish[0]
	for _, f := range finish[1:] {
		if f > maxF {
			maxF = f
		}
		if f < minF {
			minF = f
		}
	}
	if maxF > start {
		res.Imbalance = (maxF - minF) / (maxF - start)
	}
	return makespan, nil
}

func sqrtOrZero(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

package sim

import (
	"context"
	"math"
	"testing"

	"cdsf/internal/availability"
	"cdsf/internal/pmf"
	"cdsf/internal/stats"
)

func TestProfileShapes(t *testing.T) {
	const n = 1000
	for name, p := range profiles {
		// Multipliers stay positive, and the mean over the loop stays
		// near 1 so total work is comparable across profiles.
		sum := 0.0
		for i := 0; i < n; i++ {
			m := p(i, n)
			if m <= 0 {
				t.Fatalf("%s: non-positive multiplier %v at %d", name, m, i)
			}
			sum += m
		}
		mean := sum / n
		if mean < 0.85 || mean > 1.15 {
			t.Errorf("%s: mean multiplier %v far from 1", name, mean)
		}
	}
	// Gradients have the right sign.
	if IncreasingProfile(0, n) >= IncreasingProfile(n-1, n) {
		t.Error("increasing profile not increasing")
	}
	if DecreasingProfile(0, n) <= DecreasingProfile(n-1, n) {
		t.Error("decreasing profile not decreasing")
	}
	if PeakedProfile(n/2, n) <= PeakedProfile(0, n) {
		t.Error("peaked profile not peaked")
	}
	// Degenerate loops do not divide by zero.
	for name, p := range profiles {
		if v := p(0, 1); v <= 0 || math.IsNaN(v) {
			t.Errorf("%s(0,1) = %v", name, v)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, err := ProfileByName("peaked"); err != nil {
		t.Error(err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestProfiledRunConservesIterations(t *testing.T) {
	for name := range profiles {
		p, _ := ProfileByName(name)
		cfg := baseConfig(t, "FAC")
		cfg.IterProfile = p
		r, err := RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := 0
		for _, k := range r.WorkerIters {
			total += k
		}
		if total != cfg.ParallelIters {
			t.Errorf("%s: executed %d iterations", name, total)
		}
	}
}

// TestStaticSuffersOnIncreasingProfile checks the classic result: with
// a systematic cost gradient, STATIC's equal-iteration shares are
// unequal work shares, while adaptive chunking absorbs the gradient.
func TestStaticSuffersOnIncreasingProfile(t *testing.T) {
	mk := func(techName string, profile Profile) float64 {
		tc := tech(t, techName)
		s, err := RunManyContext(context.Background(), Config{
			ParallelIters: 4000,
			Workers:       8,
			IterTime:      stats.NewNormal(1, 0.1),
			Avail:         availability.Static{PMF: pmf.Point(1)},
			Technique:     tc,
			IterProfile:   profile,
			Overhead:      0.5,
			Seed:          5,
		}, 15)
		if err != nil {
			t.Fatal(err)
		}
		return s.Mean()
	}
	staticFlat := mk("STATIC", nil)
	staticInc := mk("STATIC", IncreasingProfile)
	afInc := mk("AF", IncreasingProfile)
	// Dedicated workers, flat loop: STATIC is near-optimal.
	ideal := 4000.0 / 8
	if staticFlat > ideal*1.15 {
		t.Errorf("flat STATIC %v far above ideal %v", staticFlat, ideal)
	}
	// The increasing gradient hands the last worker ~1.44x the work.
	if staticInc < staticFlat*1.2 {
		t.Errorf("increasing profile did not hurt STATIC: %v vs %v", staticInc, staticFlat)
	}
	if afInc > staticInc*0.85 {
		t.Errorf("AF did not absorb the gradient: %v vs STATIC %v", afInc, staticInc)
	}
}

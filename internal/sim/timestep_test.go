package sim

import (
	"context"
	"math"
	"testing"

	"cdsf/internal/availability"
	"cdsf/internal/pmf"
	"cdsf/internal/stats"
)

func TestTimeStepsIterationConservation(t *testing.T) {
	cfg := baseConfig(t, "FAC")
	cfg.TimeSteps = 5
	r, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, k := range r.WorkerIters {
		total += k
	}
	if total != 5*cfg.ParallelIters {
		t.Errorf("5 sweeps executed %d iterations, want %d", total, 5*cfg.ParallelIters)
	}
	// The serial phase runs once per sweep.
	single, err := RunContext(context.Background(), baseConfig(t, "FAC"))
	if err != nil {
		t.Fatal(err)
	}
	if r.SerialTime < 3*single.SerialTime {
		t.Errorf("multi-sweep serial time %v vs single %v", r.SerialTime, single.SerialTime)
	}
	if r.Makespan < 4*single.Makespan {
		t.Errorf("5-sweep makespan %v suspiciously small vs single %v", r.Makespan, single.Makespan)
	}
}

func TestAWFImprovesAcrossTimeSteps(t *testing.T) {
	// Persistently heterogeneous workers: AWF learns the weights at the
	// first step boundary, so a multi-sweep run beats WF-with-equal-
	// weights restarted each sweep... and in a single sweep AWF equals
	// equal-weight WF by construction. Compare per-sweep cost of AWF's
	// later sweeps against its first.
	avail := pmf.MustNew([]pmf.Pulse{{Value: 0.25, Prob: 0.5}, {Value: 1, Prob: 0.5}})
	mkCfg := func(steps int) Config {
		return Config{
			ParallelIters: 2000,
			Workers:       4,
			IterTime:      stats.NewNormal(1, 0.1),
			Avail:         availability.Static{PMF: avail},
			Technique:     tech(t, "AWF"),
			Overhead:      0.5,
			Seed:          3,
		}
	}
	oneCfg := mkCfg(1)
	oneCfg.TimeSteps = 1
	one, err := RunContext(context.Background(), oneCfg)
	if err != nil {
		t.Fatal(err)
	}
	fourCfg := mkCfg(4)
	fourCfg.TimeSteps = 4
	four, err := RunContext(context.Background(), fourCfg)
	if err != nil {
		t.Fatal(err)
	}
	perSweepLater := (four.Makespan - one.Makespan) / 3
	// Later sweeps should not be slower than the unadapted first sweep
	// by any meaningful margin (they share the availability draws).
	if perSweepLater > one.Makespan*1.05 {
		t.Errorf("AWF later sweeps average %v vs first sweep %v", perSweepLater, one.Makespan)
	}
}

func TestTimeStepsDeterministic(t *testing.T) {
	cfg := baseConfig(t, "AWF")
	cfg.TimeSteps = 3
	a, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Makespan-b.Makespan) > 1e-9 {
		t.Error("multi-sweep run not deterministic")
	}
}

package sim

import (
	"context"
	"math"
	"reflect"
	"testing"

	"cdsf/internal/availability"
	"cdsf/internal/metrics"
	"cdsf/internal/pmf"
	"cdsf/internal/rng"
	"cdsf/internal/stats"
)

func replCfg(t *testing.T) Config {
	t.Helper()
	return Config{
		SerialIters:   5,
		ParallelIters: 400,
		Workers:       4,
		IterTime:      stats.NewNormal(1, 0.3),
		Avail:         availability.Static{PMF: pmf.Point(0.8)},
		Technique:     tech(t, "FAC"),
		Overhead:      0.05,
		Seed:          42,
	}
}

// TestConfidenceIntervalEpsilonAndArbitraryLevel pins the two halves of
// the ConfidenceInterval fix: levels within epsilon of the tabulated
// values hit the fast path, and any other level in (0, 1) is served via
// the inverse normal CDF.
func TestConfidenceIntervalEpsilonAndArbitraryLevel(t *testing.T) {
	s := &Sample{Makespans: []float64{9, 10, 11, 10, 9.5, 10.5, 10, 10}}

	// 1 - 0.05 != 0.95 exactly in float64 arithmetic for some
	// computations; the epsilon match must absorb tiny representation
	// noise around each tabulated level.
	exactLo, exactHi, err := s.ConfidenceInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	noisyLo, noisyHi, err := s.ConfidenceInterval(0.95 + 1e-12)
	if err != nil {
		t.Fatalf("epsilon-close level rejected: %v", err)
	}
	if exactLo != noisyLo || exactHi != noisyHi {
		t.Errorf("epsilon-close level produced different CI: [%v,%v] vs [%v,%v]",
			exactLo, exactHi, noisyLo, noisyHi)
	}

	// An arbitrary level uses z from the inverse normal CDF; check 0.80
	// against the known z = 1.2816.
	lo, hi, err := s.ConfidenceInterval(0.80)
	if err != nil {
		t.Fatalf("level 0.80 rejected: %v", err)
	}
	n := float64(len(s.Makespans))
	se := s.StdDev() / math.Sqrt(n)
	wantHalf := 1.2816 * se
	if gotHalf := (hi - lo) / 2; math.Abs(gotHalf-wantHalf) > 1e-3*wantHalf {
		t.Errorf("80%% CI half-width = %v, want ~%v", gotHalf, wantHalf)
	}
	if !(lo < s.Mean() && s.Mean() < hi) {
		t.Errorf("mean %v outside CI [%v, %v]", s.Mean(), lo, hi)
	}

	// The CI width must be monotone in the level even across the
	// fast-path/CDF boundary.
	prev := 0.0
	for _, level := range []float64{0.5, 0.8, 0.90, 0.95, 0.97, 0.99, 0.995} {
		lo, hi, err := s.ConfidenceInterval(level)
		if err != nil {
			t.Fatalf("level %v: %v", level, err)
		}
		if w := hi - lo; w <= prev {
			t.Errorf("CI width not increasing at level %v: %v <= %v", level, w, prev)
		} else {
			prev = w
		}
	}
}

// TestEmptySampleZeroValues pins the documented zero-value behaviour of
// an empty Sample: no NaN, no panic.
func TestEmptySampleZeroValues(t *testing.T) {
	s := &Sample{}
	if got := s.Mean(); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
	if got := s.StdDev(); got != 0 {
		t.Errorf("empty StdDev = %v", got)
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v", got)
	}
	if got := s.PrLE(100); got != 0 {
		t.Errorf("empty PrLE = %v", got)
	}
	if _, _, err := s.ConfidenceInterval(0.95); err == nil {
		t.Error("empty sample CI accepted")
	}
}

// TestQuantileCache checks that the cached sort order tracks appends
// and in-place edits (via Invalidate), and that Quantile/PrLE agree
// with the uncached stats implementations.
func TestQuantileCache(t *testing.T) {
	s := &Sample{Makespans: []float64{3, 1, 2}}
	if got, want := s.Quantile(0.5), stats.Quantile(s.Makespans, 0.5); got != want {
		t.Errorf("median = %v, want %v", got, want)
	}
	if got := s.PrLE(2); got != 2.0/3.0 {
		t.Errorf("PrLE(2) = %v", got)
	}
	// Makespans must not be reordered by the cache.
	if !reflect.DeepEqual(s.Makespans, []float64{3, 1, 2}) {
		t.Errorf("Makespans mutated: %v", s.Makespans)
	}

	// Appending changes the length, which rebuilds the cache.
	s.Makespans = append(s.Makespans, 0)
	if got, want := s.Quantile(0), 0.0; got != want {
		t.Errorf("min after append = %v, want %v", got, want)
	}

	// An in-place overwrite keeps the length; Invalidate refreshes.
	s.Makespans[0] = 10
	s.Invalidate()
	if got, want := s.Quantile(1), 10.0; got != want {
		t.Errorf("max after in-place edit = %v, want %v", got, want)
	}
	if got := s.PrLE(9.5); got != 0.75 {
		t.Errorf("PrLE(9.5) = %v", got)
	}
}

// TestAppendInvalidatesAfterTruncateRefill is the regression test for
// the stale-cache footgun: a truncate followed by refilling to the SAME
// length defeats the length-change heuristic, so quantiles silently
// answered over the old values. Append invalidates internally, which
// makes the pattern safe; this test fails against the pre-Append code
// (where the refill had to go through a direct append).
func TestAppendInvalidatesAfterTruncateRefill(t *testing.T) {
	s := &Sample{}
	s.Append(100, 200, 300)
	// Warm the sort cache over the original values.
	if got := s.Quantile(1); got != 300 {
		t.Fatalf("max = %v", got)
	}
	// Truncate and refill to the same length through Append.
	s.Makespans = s.Makespans[:0]
	s.Append(1, 2, 3)
	if got := s.Quantile(1); got != 3 {
		t.Errorf("max after truncate+refill = %v, want 3 (stale cache)", got)
	}
	if got := s.PrLE(150); got != 1 {
		t.Errorf("PrLE(150) after truncate+refill = %v, want 1 (stale cache)", got)
	}
	// Same hazard, same length, new high outlier: Quantile must see it.
	s.Makespans = s.Makespans[:0]
	s.Append(7, 8, 9000)
	if got := s.Quantile(0.5); got != 8 {
		t.Errorf("median after second refill = %v, want 8", got)
	}
}

// wrappedModel hides an inner model behind a decorator that only
// exposes it via Unwrap — the shape that defeated the old anonymous
// interface assertion in RunMany.
type wrappedModel struct{ inner availability.Model }

func (w wrappedModel) NewProcess(r *rng.Source) availability.Process {
	return w.inner.NewProcess(r)
}
func (w wrappedModel) Expected() float64          { return w.inner.Expected() }
func (w wrappedModel) Name() string               { return "wrapped(" + w.inner.Name() + ")" }
func (w wrappedModel) Unwrap() availability.Model { return w.inner }

// TestRunManyWrappedSharedLoadSequential is the regression test for the
// group-scoped detection fix: a SharedLoad hidden behind a wrapper must
// still force sequential execution. Under -race the old behaviour
// (parallel repetitions mutating the shared chain) is reported as a
// data race; without -race the test still verifies the wrapped run
// matches the direct run exactly.
func TestRunManyWrappedSharedLoadSequential(t *testing.T) {
	load, err := pmf.FromPairs([]float64{0.4, 0.6, 0.8, 1.0}, []float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	mkShared := func() *availability.SharedLoad {
		return &availability.SharedLoad{
			Shared: load, Idio: load, Mix: 1, Interval: 5, Persistence: 0.5,
		}
	}
	cfg := replCfg(t)
	const reps = 16

	cfg.Avail = mkShared()
	direct, err := RunManyContext(context.Background(), cfg, reps)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Avail = wrappedModel{inner: mkShared()}
	wrapped, err := RunManyContext(context.Background(), cfg, reps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Makespans, wrapped.Makespans) {
		t.Errorf("wrapped SharedLoad diverged from direct run:\n%v\nvs\n%v",
			direct.Makespans, wrapped.Makespans)
	}
}

// TestMetricsDoNotPerturbResults is the determinism gate: the same
// seeded configuration must produce bit-identical makespans with
// metrics enabled and disabled.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	cfg := replCfg(t)
	const reps = 20

	off, err := RunManyContext(context.Background(), cfg, reps)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	on, err := RunManyContext(context.Background(), cfg, reps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off.Makespans, on.Makespans) {
		t.Errorf("metrics changed seeded results:\n%v\nvs\n%v", off.Makespans, on.Makespans)
	}

	// And the registry actually observed the runs.
	if got := reg.Counter("sim.runs").Value(); got != reps {
		t.Errorf("sim.runs = %d, want %d", got, reps)
	}
	if got := reg.Counter("sim.replications").Value(); got != reps {
		t.Errorf("sim.replications = %d, want %d", got, reps)
	}
	if reg.Counter("sim.events").Value() == 0 || reg.Counter("sim.chunks").Value() == 0 {
		t.Error("event/chunk counters not populated")
	}
	if reg.Counter("sim.heap_ops").Value() < reg.Counter("sim.events").Value() {
		t.Error("heap ops should dominate events")
	}
	if reg.Timer("sim.run_wall").Count() != reps {
		t.Errorf("run_wall count = %d, want %d", reg.Timer("sim.run_wall").Count(), reps)
	}
	if reg.Histogram("sim.worker_utilization", nil).Count() != reps*int64(cfg.Workers) {
		t.Error("worker utilization histogram incomplete")
	}
}

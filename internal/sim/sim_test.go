package sim

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/stats"
)

func tech(t testing.TB, name string) dls.Technique {
	t.Helper()
	tc, ok := dls.Get(name)
	if !ok {
		t.Fatalf("technique %q missing", name)
	}
	return tc
}

func baseConfig(t testing.TB, techName string) Config {
	return Config{
		SerialIters:   50,
		ParallelIters: 1000,
		Workers:       4,
		IterTime:      stats.NewNormal(1, 0.2),
		Avail:         availability.Static{PMF: pmf.Point(1)},
		Technique:     tech(t, techName),
		Overhead:      0.5,
		Seed:          1,
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	cfg := baseConfig(t, "FAC")
	a, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.NumChunks != b.NumChunks {
		t.Errorf("same seed diverged: %v/%d vs %v/%d",
			a.Makespan, a.NumChunks, b.Makespan, b.NumChunks)
	}
	cfg.Seed = 2
	c, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespan == a.Makespan {
		t.Error("different seeds produced identical makespans")
	}
}

func TestIterationConservation(t *testing.T) {
	for _, name := range dls.Names() {
		cfg := baseConfig(t, name)
		r, err := RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := 0
		for _, k := range r.WorkerIters {
			total += k
		}
		if total != cfg.ParallelIters {
			t.Errorf("%s executed %d of %d iterations", name, total, cfg.ParallelIters)
		}
	}
}

func TestMakespanAboveIdealBound(t *testing.T) {
	cfg := baseConfig(t, "AF")
	r, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fully available workers: serial ~50, parallel >= 1000/4 = 250 in
	// expectation; allow slack for stochastic iteration times but the
	// makespan cannot be below half the deterministic bound.
	ideal := 50.0 + 1000.0/4
	if r.Makespan < ideal*0.5 {
		t.Errorf("makespan %v below plausible bound %v", r.Makespan, ideal)
	}
	if r.SerialTime <= 0 {
		t.Errorf("serial time %v", r.SerialTime)
	}
	if r.ParallelTime <= 0 {
		t.Errorf("parallel time %v", r.ParallelTime)
	}
	if math.Abs(r.SerialTime+r.ParallelTime-r.Makespan) > 1e-9 {
		t.Error("serial + parallel != makespan")
	}
}

func TestNoSerialPhase(t *testing.T) {
	cfg := baseConfig(t, "FAC")
	cfg.SerialIters = 0
	r, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.SerialTime != 0 {
		t.Errorf("serial time %v with no serial iterations", r.SerialTime)
	}
}

func TestChunkLogConsistency(t *testing.T) {
	cfg := baseConfig(t, "GSS")
	cfg.CollectChunks = true
	r, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Chunks) != r.NumChunks {
		t.Fatalf("chunk log %d != NumChunks %d", len(r.Chunks), r.NumChunks)
	}
	total := 0
	for _, c := range r.Chunks {
		if c.Size <= 0 || c.Elapsed <= 0 || c.Start < 0 {
			t.Fatalf("bad chunk record %+v", c)
		}
		total += c.Size
	}
	if total != cfg.ParallelIters {
		t.Errorf("chunk log sums to %d", total)
	}
}

func TestLowAvailabilityStretchesMakespan(t *testing.T) {
	full := baseConfig(t, "FAC")
	rFull, err := RunContext(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	half := full
	half.Avail = availability.Static{PMF: pmf.Point(0.5)}
	rHalf, err := RunContext(context.Background(), half)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rHalf.Makespan / rFull.Makespan
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("half availability scaled makespan by %.2f, want ~2", ratio)
	}
}

func TestAdaptiveBeatsStaticUnderHeterogeneity(t *testing.T) {
	// Two of four workers at 25% availability, persistent for the run:
	// STATIC is dominated by the slow workers' fixed half of the work,
	// while AF migrates iterations to the fast ones.
	avail := pmf.MustNew([]pmf.Pulse{{Value: 0.25, Prob: 0.5}, {Value: 1, Prob: 0.5}})
	mk := func(name string) float64 {
		cfg := Config{
			ParallelIters: 2000,
			Workers:       4,
			IterTime:      stats.NewNormal(1, 0.1),
			Avail:         availability.Static{PMF: avail},
			Technique:     tech(t, name),
			Overhead:      0.5,
			Seed:          9,
		}
		s, err := RunManyContext(context.Background(), cfg, 20)
		if err != nil {
			t.Fatal(err)
		}
		return s.Mean()
	}
	static := mk("STATIC")
	af := mk("AF")
	if af >= static {
		t.Errorf("AF mean %v not better than STATIC %v under heterogeneity", af, static)
	}
	if static/af < 1.3 {
		t.Errorf("AF advantage only %.2fx, expected substantial", static/af)
	}
}

func TestOverheadMonotone(t *testing.T) {
	cheap := baseConfig(t, "SS")
	cheap.Overhead = 0
	expensive := cheap
	expensive.Overhead = 2
	rc, err := RunContext(context.Background(), cheap)
	if err != nil {
		t.Fatal(err)
	}
	re, err := RunContext(context.Background(), expensive)
	if err != nil {
		t.Fatal(err)
	}
	// SS dispatches one chunk per iteration: overhead 2 adds ~2*1000/4
	// per worker.
	if re.Makespan <= rc.Makespan {
		t.Errorf("overhead did not increase makespan: %v vs %v", re.Makespan, rc.Makespan)
	}
}

func TestBestMasterImprovesSerialPhase(t *testing.T) {
	avail := pmf.MustNew([]pmf.Pulse{{Value: 0.1, Prob: 0.5}, {Value: 1, Prob: 0.5}})
	sum := func(best bool) float64 {
		total := 0.0
		for seed := uint64(0); seed < 30; seed++ {
			cfg := baseConfig(t, "FAC")
			cfg.Avail = availability.Static{PMF: avail}
			cfg.BestMaster = best
			cfg.Seed = seed
			r, err := RunContext(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			total += r.SerialTime
		}
		return total
	}
	if w0, bm := sum(false), sum(true); bm >= w0 {
		t.Errorf("BestMaster serial total %v >= worker-0 total %v", bm, w0)
	}
}

func TestWeightsFromAvail(t *testing.T) {
	// With WF and availability-derived weights under static draws, the
	// iteration distribution should track worker availability.
	avail := pmf.MustNew([]pmf.Pulse{{Value: 0.2, Prob: 0.5}, {Value: 1, Prob: 0.5}})
	cfg := Config{
		ParallelIters:    4000,
		Workers:          4,
		IterTime:         stats.NewNormal(1, 0.1),
		Avail:            availability.Static{PMF: avail},
		Technique:        tech(t, "WF"),
		WeightsFromAvail: true,
		Seed:             4,
		CollectChunks:    true,
	}
	r, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Imbalance > 0.35 {
		t.Errorf("WF with availability weights left imbalance %.2f", r.Imbalance)
	}
}

func TestValidation(t *testing.T) {
	good := baseConfig(t, "FAC")
	bads := []func(*Config){
		func(c *Config) { c.ParallelIters = 0 },
		func(c *Config) { c.SerialIters = -1 },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.IterTime = nil },
		func(c *Config) { c.Avail = nil },
		func(c *Config) { c.Technique = dls.Technique{} },
		func(c *Config) { c.Overhead = -1 },
	}
	for i, mod := range bads {
		cfg := good
		mod(&cfg)
		if _, err := RunContext(context.Background(), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunMany(t *testing.T) {
	cfg := baseConfig(t, "FAC")
	s, err := RunManyContext(context.Background(), cfg, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Makespans) != 25 {
		t.Fatalf("got %d makespans", len(s.Makespans))
	}
	if s.Mean() <= 0 || s.StdDev() < 0 {
		t.Error("bad sample stats")
	}
	if pr := s.PrLE(s.Quantile(0.5)); pr < 0.4 || pr > 0.7 {
		t.Errorf("PrLE(median) = %v", pr)
	}
	if _, err := RunManyContext(context.Background(), cfg, 0); err == nil {
		t.Error("zero reps accepted")
	}
	// Deterministic: same base seed, same sample.
	s2, err := RunManyContext(context.Background(), cfg, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Makespans {
		if s.Makespans[i] != s2.Makespans[i] {
			t.Fatal("RunMany not deterministic")
		}
	}
}

// TestQuickSimInvariants property-checks core invariants across random
// configurations: all iterations execute, makespan bounds hold.
func TestQuickSimInvariants(t *testing.T) {
	techs := dls.All()
	f := func(seed uint64, nRaw uint16, pRaw, techRaw uint8) bool {
		n := int(nRaw)%3000 + 1
		p := int(pRaw)%8 + 1
		cfg := Config{
			ParallelIters: n,
			Workers:       p,
			IterTime:      stats.NewNormal(1, 0.3),
			Avail: availability.Markov{
				PMF: pmf.MustNew([]pmf.Pulse{
					{Value: 0.5, Prob: 0.5}, {Value: 1, Prob: 0.5}}),
				Interval: 50, Persistence: 0.5,
			},
			Technique: techs[int(techRaw)%len(techs)],
			Overhead:  0.1,
			Seed:      seed,
		}
		r, err := RunContext(context.Background(), cfg)
		if err != nil {
			return false
		}
		total := 0
		for _, k := range r.WorkerIters {
			total += k
		}
		// All iterations executed; makespan at least the dedicated
		// serial path of the largest per-worker load is hard to bound
		// tightly, so check weak sanity bounds.
		return total == n && r.Makespan > 0 && r.Imbalance >= 0 && r.Imbalance <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBlackoutFailureInjection stresses the techniques with random full
// outages: the run must still complete every iteration, and adaptive
// chunking must beat STATIC by a wide margin when workers black out for
// whole epochs.
func TestBlackoutFailureInjection(t *testing.T) {
	base := availability.Blackout{
		Base:     availability.Static{PMF: pmf.Point(1)},
		Prob:     0.2,
		Interval: 100,
	}
	mk := func(name string) float64 {
		s, err := RunManyContext(context.Background(), Config{
			ParallelIters: 2000,
			Workers:       4,
			IterTime:      stats.NewNormal(1, 0.2),
			Avail:         base,
			Technique:     tech(t, name),
			Overhead:      0.5,
			Seed:          13,
		}, 20)
		if err != nil {
			t.Fatal(err)
		}
		return s.Mean()
	}
	static := mk("STATIC")
	af := mk("AF")
	fac := mk("FAC")
	if af >= static || fac >= static {
		t.Errorf("outages did not favour dynamic scheduling: STATIC %v, FAC %v, AF %v",
			static, fac, af)
	}
	// Conservation under failure injection.
	r, err := RunContext(context.Background(), Config{
		ParallelIters: 777,
		Workers:       3,
		IterTime:      stats.NewNormal(1, 0.2),
		Avail:         base,
		Technique:     tech(t, "AWF-C"),
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, k := range r.WorkerIters {
		total += k
	}
	if total != 777 {
		t.Errorf("executed %d of 777 iterations under outages", total)
	}
}

func TestConfidenceInterval(t *testing.T) {
	cfg := baseConfig(t, "FAC")
	s, err := RunManyContext(context.Background(), cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	lo95, hi95, err := s.ConfidenceInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo95 < s.Mean() && s.Mean() < hi95) {
		t.Errorf("mean %v outside CI [%v, %v]", s.Mean(), lo95, hi95)
	}
	lo99, hi99, err := s.ConfidenceInterval(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if hi99-lo99 <= hi95-lo95 {
		t.Error("99% CI not wider than 95% CI")
	}
	if _, _, err := s.ConfidenceInterval(0.5); err != nil {
		t.Errorf("arbitrary level in (0,1) rejected: %v", err)
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := s.ConfidenceInterval(bad); err == nil {
			t.Errorf("level %v outside (0,1) accepted", bad)
		}
	}
	tiny := &Sample{Makespans: []float64{1}}
	if _, _, err := tiny.ConfidenceInterval(0.95); err == nil {
		t.Error("single-run CI accepted")
	}
}

package sim

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, replCfg(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A cancelled replication fan-out must drain its workers and report the
// partial progress, for both the sequential and the parallel path.
func TestRunManyContextCancelled(t *testing.T) {
	// reps < 4 exercises the sequential path, reps >= 4 the worker pool.
	for _, reps := range []int{2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RunManyContext(ctx, replCfg(t), reps)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("reps=%d: err = %v, want context.Canceled", reps, err)
		}
		if !strings.Contains(err.Error(), "repetitions") {
			t.Errorf("reps=%d: error %q lacks partial-progress count", reps, err)
		}
	}
}

// RunManyContext with a background context must be bit-identical to the
// legacy RunMany on a seeded workload.
func TestRunManyContextMatchesRunMany(t *testing.T) {
	a, err := RunManyContext(context.Background(), replCfg(t), 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunManyContext(context.Background(), replCfg(t), 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Makespans, b.Makespans) {
		t.Errorf("RunMany %v != RunManyContext %v", a.Makespans, b.Makespans)
	}
}

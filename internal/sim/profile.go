package sim

import (
	"fmt"
	"math"
)

// Profile shapes the loop's iteration costs across the iteration space:
// the dedicated-time cost of iteration i (0-based of n) is the base
// draw multiplied by Profile(i, n). Classic DLS benchmarks are
// irregular in exactly this way — triangular costs (Mandelbrot rows),
// peaked kernels, alternating phases — and non-adaptive chunking
// interacts badly with systematic cost gradients because equal shares
// of the iteration space stop being equal shares of the work.
//
// A nil Profile means a flat loop (multiplier 1).
type Profile func(i, n int) float64

// FlatProfile is the uniform loop: every iteration costs the same in
// expectation.
func FlatProfile(int, int) float64 { return 1 }

// IncreasingProfile grows linearly from 0.5x at the start to 1.5x at
// the end (mean 1), the "triangular" workload of the factoring papers.
func IncreasingProfile(i, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 0.5 + float64(i)/float64(n-1)
}

// DecreasingProfile is the mirrored triangle: expensive iterations
// first. Decreasing workloads are the friendly case for GSS-style
// shrinking chunks and the unfriendly one for increasing-chunk rules.
func DecreasingProfile(i, n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1.5 - float64(i)/float64(n-1)
}

// PeakedProfile concentrates cost in the middle of the iteration space
// (a Gaussian bump peaking at 2x over a 0.72x floor, mean ~1), the
// "kernel in the center" pattern of stencil and convolution loops.
func PeakedProfile(i, n int) float64 {
	if n <= 1 {
		return 1
	}
	x := float64(i)/float64(n-1) - 0.5
	return 0.72 + 1.28*math.Exp(-x*x/(2*0.15*0.15))*0.5
}

// AlternatingProfile switches between 0.5x and 1.5x in blocks of one
// sixteenth of the iteration space — phase-structured loops.
func AlternatingProfile(i, n int) float64 {
	block := n / 16
	if block < 1 {
		block = 1
	}
	if (i/block)%2 == 0 {
		return 0.5
	}
	return 1.5
}

// profileByName resolves the built-in profiles for the CLI tools.
var profiles = map[string]Profile{
	"flat":        FlatProfile,
	"increasing":  IncreasingProfile,
	"decreasing":  DecreasingProfile,
	"peaked":      PeakedProfile,
	"alternating": AlternatingProfile,
}

// ProfileByName returns a built-in profile by name: flat, increasing,
// decreasing, peaked, alternating.
func ProfileByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown profile %q (have flat, increasing, decreasing, peaked, alternating)", name)
	}
	return p, nil
}

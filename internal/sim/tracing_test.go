package sim

import (
	"context"
	"reflect"
	"testing"

	"cdsf/internal/rng"
	"cdsf/internal/tracing"
)

// A wired tracer must not perturb the simulation: same seed, same
// Result, and the internal chunk collection it forces must not leak
// into the caller's Result.
func TestTracerDoesNotPerturbResults(t *testing.T) {
	cfg := baseConfig(t, "FAC")
	plain, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	traced := cfg
	traced.Tracer = tracing.New()
	traced.TraceScope = "fac"
	got, err := RunContext(context.Background(), traced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Errorf("tracing changed the result:\nplain  %+v\ntraced %+v", plain, got)
	}
	if got.Chunks != nil {
		t.Error("tracer leaked chunk collection into the result")
	}
	if traced.Tracer.Len() == 0 {
		t.Error("no spans recorded")
	}

	// When the caller asks for chunks, tracing must keep them.
	traced.CollectChunks = true
	withChunks, err := RunContext(context.Background(), traced)
	if err != nil {
		t.Fatal(err)
	}
	if len(withChunks.Chunks) == 0 {
		t.Error("CollectChunks dropped under tracing")
	}
}

func TestRunSpanAccounting(t *testing.T) {
	cfg := baseConfig(t, "FAC")
	cfg.Tracer = tracing.New()
	cfg.TraceScope = "fac"
	cfg.CollectChunks = true
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild the expected per-lane sums straight from the chunk log.
	busy := map[int]float64{}
	overheadSum := map[int]float64{}
	for _, c := range res.Chunks {
		busy[c.Worker] += c.Elapsed
		overheadSum[c.Worker] += cfg.Overhead
	}

	gotBusy := map[string]float64{}
	gotOverhead := map[string]float64{}
	serial := 0.0
	for _, s := range cfg.Tracer.Spans() {
		if s.Clock != tracing.Sim {
			t.Fatalf("sim run emitted wall span %+v", s)
		}
		switch s.Cat {
		case "busy":
			gotBusy[s.Lane] += s.Dur
		case "overhead":
			gotOverhead[s.Lane] += s.Dur
		case "serial":
			serial += s.Dur
		}
	}
	if serial != res.SerialTime {
		t.Errorf("serial span = %v, want %v", serial, res.SerialTime)
	}
	for w, want := range busy {
		lane := "fac/w0" + string(rune('0'+w))
		if gotBusy[lane] != want {
			t.Errorf("%s busy = %v, want %v", lane, gotBusy[lane], want)
		}
		if gotOverhead[lane] != overheadSum[w] {
			t.Errorf("%s overhead = %v, want %v", lane, gotOverhead[lane], overheadSum[w])
		}
	}
}

// RunMany traces one representative repetition, not all of them: a
// batch must record exactly the spans of a single run.
func TestRunManyTracesFirstRepOnly(t *testing.T) {
	cfg := baseConfig(t, "FAC")
	cfg.Tracer = tracing.New()
	// RunMany derives rep i's seed from cfg.Seed; reproduce rep 0 here.
	single := cfg
	single.Seed = rng.New(cfg.Seed).Uint64()
	rep0, err := RunContext(context.Background(), single)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Tracer.Len()
	if want == 0 {
		t.Fatal("single run recorded nothing")
	}

	cfg.Tracer = tracing.New()
	s, err := RunManyContext(context.Background(), cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Tracer.Len(); got != want {
		t.Errorf("RunMany recorded %d spans, want %d (one rep)", got, want)
	}
	if s.Makespans[0] != rep0.Makespan {
		t.Errorf("rep 0 makespan %v != single run %v", s.Makespans[0], rep0.Makespan)
	}
}

// The process-wide default tracer reaches runs whose config carries no
// explicit tracer, and the noTrace rep-suppression applies to it too.
func TestDefaultTracerFallback(t *testing.T) {
	tr := tracing.New()
	tracing.SetDefault(tr)
	defer tracing.SetDefault(nil)
	cfg := baseConfig(t, "SS")
	if _, err := RunContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Error("default tracer saw no spans")
	}
}

package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"cdsf/internal/rng"
	"cdsf/internal/stats"
)

// Sample aggregates repeated simulation runs of the same configuration
// under different seeds.
type Sample struct {
	// Makespans holds the per-run makespans in run order.
	Makespans []float64
	// MeanChunks is the average number of dispatched chunks per run.
	MeanChunks float64
	// MeanImbalance is the average load-imbalance metric per run.
	MeanImbalance float64
}

// Mean returns the mean makespan.
func (s *Sample) Mean() float64 { return stats.Mean(s.Makespans) }

// StdDev returns the makespan standard deviation.
func (s *Sample) StdDev() float64 { return stats.StdDev(s.Makespans) }

// Quantile returns the p-quantile of the makespans.
func (s *Sample) Quantile(p float64) float64 { return stats.Quantile(s.Makespans, p) }

// PrLE returns the fraction of runs whose makespan was <= x — the
// empirical counterpart of Stage I's Pr(T <= Delta).
func (s *Sample) PrLE(x float64) float64 {
	n := 0
	for _, m := range s.Makespans {
		if m <= x {
			n++
		}
	}
	return float64(n) / float64(len(s.Makespans))
}

// RunMany executes reps independent simulations of cfg, deriving the
// per-run seeds deterministically from cfg.Seed, and aggregates the
// results. Repetitions run in parallel across CPUs when the
// availability model allows it (group-scoped models such as
// availability.SharedLoad carry per-run shared state and force
// sequential execution); the aggregate is identical either way because
// every repetition's seed is fixed up front.
func RunMany(cfg Config, reps int) (*Sample, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("sim: %d repetitions", reps)
	}
	seeds := rng.New(cfg.Seed)
	runSeeds := make([]uint64, reps)
	for i := range runSeeds {
		runSeeds[i] = seeds.Uint64()
	}

	results := make([]*Result, reps)
	errs := make([]error, reps)
	runOne := func(i int) {
		c := cfg
		c.Seed = runSeeds[i]
		c.CollectChunks = false
		results[i], errs[i] = Run(c)
	}

	_, groupScoped := cfg.Avail.(interface{ ResetGroup() })
	workers := runtime.GOMAXPROCS(0)
	if groupScoped || workers <= 1 || reps < 4 {
		for i := 0; i < reps; i++ {
			runOne(i)
		}
	} else {
		if workers > reps {
			workers = reps
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= reps {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}

	out := &Sample{Makespans: make([]float64, 0, reps)}
	sumChunks, sumImb := 0.0, 0.0
	for i := 0; i < reps; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		r := results[i]
		out.Makespans = append(out.Makespans, r.Makespan)
		sumChunks += float64(r.NumChunks)
		sumImb += r.Imbalance
	}
	out.MeanChunks = sumChunks / float64(reps)
	out.MeanImbalance = sumImb / float64(reps)
	return out, nil
}

// ConfidenceInterval returns the normal-approximation confidence
// interval for the mean makespan at the given level (0.90, 0.95, or
// 0.99). With the repetition counts used throughout this repository
// (>= 20) the normal approximation is adequate.
func (s *Sample) ConfidenceInterval(level float64) (lo, hi float64, err error) {
	var z float64
	switch {
	case level == 0.90:
		z = 1.6449
	case level == 0.95:
		z = 1.9600
	case level == 0.99:
		z = 2.5758
	default:
		return 0, 0, fmt.Errorf("sim: unsupported confidence level %v", level)
	}
	n := float64(len(s.Makespans))
	if n < 2 {
		return 0, 0, fmt.Errorf("sim: %d makespans too few for a confidence interval", len(s.Makespans))
	}
	mean := s.Mean()
	se := s.StdDev() / math.Sqrt(n)
	return mean - z*se, mean + z*se, nil
}

package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cdsf/internal/availability"
	"cdsf/internal/pmf"
	"cdsf/internal/rng"
	"cdsf/internal/stats"
)

// Sample aggregates repeated simulation runs of the same configuration
// under different seeds. An empty Sample (no makespans) answers every
// statistic with 0 rather than NaN or a panic, so callers can aggregate
// unconditionally.
type Sample struct {
	// Makespans holds the per-run makespans in run order.
	Makespans []float64
	// MeanChunks is the average number of dispatched chunks per run.
	MeanChunks float64
	// MeanImbalance is the average load-imbalance metric per run.
	MeanImbalance float64

	// sorted caches the makespans in ascending order for Quantile and
	// PrLE; it is rebuilt whenever len(Makespans) changes. Callers that
	// overwrite existing entries in place (without changing the length)
	// must call Invalidate afterwards.
	sorted []float64
}

// Invalidate drops the cached sort order used by Quantile and PrLE.
// Use Append to add makespans — it invalidates internally; direct
// writes to Makespans (in-place edits, or a truncate-and-refill that
// lands on the same length, which the stale-length heuristic below
// cannot see) must call Invalidate afterwards.
func (s *Sample) Invalidate() { s.sorted = nil }

// Append adds makespans to the sample and invalidates the cached sort
// order. Prefer it over appending to Makespans directly: a direct
// append that restores a previous length (truncate, then refill)
// leaves the cache stale, and Quantile/PrLE silently answer over the
// old values.
func (s *Sample) Append(makespans ...float64) {
	s.Makespans = append(s.Makespans, makespans...)
	s.sorted = nil
}

// sortedMakespans returns the makespans in ascending order, sorting at
// most once per change in length.
func (s *Sample) sortedMakespans() []float64 {
	if len(s.sorted) != len(s.Makespans) {
		s.sorted = append(s.sorted[:0], s.Makespans...)
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// Mean returns the mean makespan, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.Makespans) == 0 {
		return 0
	}
	return stats.Mean(s.Makespans)
}

// StdDev returns the makespan standard deviation, or 0 for an empty
// sample.
func (s *Sample) StdDev() float64 {
	if len(s.Makespans) == 0 {
		return 0
	}
	return stats.StdDev(s.Makespans)
}

// Quantile returns the p-quantile of the makespans, or 0 for an empty
// sample. The sort order is cached across calls, so querying many
// quantiles of one sample costs one sort.
func (s *Sample) Quantile(p float64) float64 {
	if len(s.Makespans) == 0 {
		return 0
	}
	return stats.QuantileSorted(s.sortedMakespans(), p)
}

// Distribution summarizes the sample's makespans as a completion-time
// distribution under the selected PMF backend, for reporting paths
// that want distribution queries (quantiles, deadline probabilities)
// rather than raw order statistics. The sparse backend bins the
// makespans into an exact pulse PMF (mirroring the paper's sampled
// construction); the grid backend quantizes the same makespans onto a
// dense lattice of span/bins step. bins must be positive and the
// sample non-empty.
func (s *Sample) Distribution(backend pmf.Backend, bins int) (pmf.Dist, error) {
	if err := backend.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if bins <= 0 {
		return nil, fmt.Errorf("sim: %d distribution bins", bins)
	}
	if len(s.Makespans) == 0 {
		return nil, fmt.Errorf("sim: empty sample has no distribution")
	}
	if !backend.IsGrid() {
		return pmf.FromSamples(s.Makespans, bins), nil
	}
	ms := s.sortedMakespans()
	step := (ms[len(ms)-1] - ms[0]) / float64(bins)
	if step <= 0 {
		// Degenerate sample: every makespan equal; any positive step
		// yields the single-bin grid.
		step = math.Max(math.Abs(ms[0]), 1)
	}
	w := 1 / float64(len(ms))
	ps := make([]pmf.Pulse, len(ms))
	for i, m := range ms {
		ps[i] = pmf.Pulse{Value: m, Prob: w}
	}
	exact, err := pmf.New(ps)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return exact.ToGrid(step), nil
}

// PrLE returns the fraction of runs whose makespan was <= x — the
// empirical counterpart of Stage I's Pr(T <= Delta) — or 0 for an
// empty sample.
func (s *Sample) PrLE(x float64) float64 {
	ms := s.sortedMakespans()
	if len(ms) == 0 {
		return 0
	}
	n := sort.Search(len(ms), func(i int) bool { return ms[i] > x })
	return float64(n) / float64(len(ms))
}

// RunManyContext is RunMany under a context. Cancellation stops workers
// from claiming further repetitions, drains the in-flight ones (each of
// which also observes ctx through RunContext), and returns a
// partial-progress error wrapping ctx.Err() that reports how many
// repetitions had completed. Uncancelled seeded runs are bit-identical
// to RunMany for any worker count.
func RunManyContext(ctx context.Context, cfg Config, reps int) (*Sample, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if reps <= 0 {
		return nil, fmt.Errorf("sim: %d repetitions", reps)
	}
	if cfg.Releases != nil && len(cfg.Releases) != reps {
		return nil, fmt.Errorf("sim: %d release times for %d repetitions", len(cfg.Releases), reps)
	}
	cfg.registry().Counter("sim.replications").Add(int64(reps))
	prog := cfg.progress()
	prog.PlanReps(reps)
	seeds := rng.New(cfg.Seed)
	runSeeds := make([]uint64, reps)
	for i := range runSeeds {
		runSeeds[i] = seeds.Uint64()
	}

	results := make([]*Result, reps)
	errs := make([]error, reps)
	runOne := func(i int) {
		c := cfg
		c.Seed = runSeeds[i]
		c.CollectChunks = false
		if cfg.Releases != nil {
			// Per-repetition release gate of a DAG batch: repetition i
			// starts when its predecessors' repetition i finished.
			c.Release = cfg.Releases[i]
			c.Releases = nil
			c.gated = true
		}
		// Trace only the first repetition: one representative timeline
		// per batch instead of reps copies flooding the span buffer.
		c.noTrace = i != 0
		results[i], errs[i] = RunContext(ctx, c)
		prog.RepDone()
	}

	_, groupScoped := availability.AsGroupScoped(cfg.Avail)
	workers := runtime.GOMAXPROCS(0)
	if groupScoped || workers <= 1 || reps < 4 {
		for i := 0; i < reps && ctx.Err() == nil; i++ {
			runOne(i)
		}
	} else {
		if workers > reps {
			workers = reps
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= reps {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}

	if err := ctx.Err(); err != nil {
		done := 0
		for i := 0; i < reps; i++ {
			if errs[i] == nil && results[i] != nil {
				done++
			}
		}
		return nil, fmt.Errorf("sim: canceled after %d/%d repetitions: %w", done, reps, err)
	}

	out := &Sample{Makespans: make([]float64, 0, reps)}
	sumChunks, sumImb := 0.0, 0.0
	for i := 0; i < reps; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		r := results[i]
		out.Append(r.Makespan)
		sumChunks += float64(r.NumChunks)
		sumImb += r.Imbalance
	}
	out.MeanChunks = sumChunks / float64(reps)
	out.MeanImbalance = sumImb / float64(reps)
	return out, nil
}

// ciLevelEps is the tolerance for matching a confidence level against
// the tabulated z-values; levels computed as e.g. 1-0.05 hit the fast
// path despite floating-point rounding.
const ciLevelEps = 1e-9

// ConfidenceInterval returns the normal-approximation confidence
// interval for the mean makespan at the given level in (0, 1). The
// common levels 0.90, 0.95 and 0.99 (matched within 1e-9) use the
// tabulated z-values; any other level derives its z-value from the
// inverse normal CDF. With the repetition counts used throughout this
// repository (>= 20) the normal approximation is adequate.
func (s *Sample) ConfidenceInterval(level float64) (lo, hi float64, err error) {
	var z float64
	switch {
	case math.Abs(level-0.90) < ciLevelEps:
		z = 1.6449
	case math.Abs(level-0.95) < ciLevelEps:
		z = 1.9600
	case math.Abs(level-0.99) < ciLevelEps:
		z = 2.5758
	case level > 0 && level < 1:
		z = stats.NewNormal(0, 1).Quantile((1 + level) / 2)
	default:
		return 0, 0, fmt.Errorf("sim: confidence level %v outside (0, 1)", level)
	}
	n := float64(len(s.Makespans))
	if n < 2 {
		return 0, 0, fmt.Errorf("sim: %d makespans too few for a confidence interval", len(s.Makespans))
	}
	mean := s.Mean()
	se := s.StdDev() / math.Sqrt(n)
	return mean - z*se, mean + z*se, nil
}

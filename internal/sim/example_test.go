package sim_test

import (
	"context"
	"fmt"

	"cdsf/internal/availability"
	"cdsf/internal/dls"
	"cdsf/internal/pmf"
	"cdsf/internal/sim"
	"cdsf/internal/stats"
)

// ExampleRun executes one loop with factoring on four dedicated
// processors; with deterministic iteration costs the makespan is the
// ideal N/P plus dispatch overheads on the critical path.
func ExampleRunContext() {
	fac, _ := dls.Get("FAC")
	r, err := sim.RunContext(context.Background(), sim.Config{
		ParallelIters: 1000,
		Workers:       4,
		IterTime:      stats.Truncated{Dist: stats.NewNormal(1, 0.0001), Lo: 0.99, Hi: 1.01},
		Avail:         availability.Static{PMF: pmf.Point(1)},
		Technique:     fac,
		Overhead:      0,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("makespan within 1%% of ideal: %v\n", r.Makespan < 1000.0/4*1.01)
	fmt.Printf("all iterations executed: %v\n",
		r.WorkerIters[0]+r.WorkerIters[1]+r.WorkerIters[2]+r.WorkerIters[3] == 1000)
	// Output:
	// makespan within 1% of ideal: true
	// all iterations executed: true
}

// ExampleRunMany aggregates repetitions into a makespan sample with
// deadline statistics.
func ExampleRunManyContext() {
	af, _ := dls.Get("AF")
	s, err := sim.RunManyContext(context.Background(), sim.Config{
		ParallelIters: 500,
		Workers:       4,
		IterTime:      stats.NewNormal(1, 0.2),
		Avail:         availability.Static{PMF: pmf.Point(1)},
		Technique:     af,
		Seed:          7,
	}, 30)
	if err != nil {
		panic(err)
	}
	fmt.Printf("30 runs, mean near ideal: %v\n", s.Mean() > 120 && s.Mean() < 140)
	fmt.Printf("Pr(T <= 2*ideal) = %.0f%%\n", s.PrLE(250)*100)
	// Output:
	// 30 runs, mean near ideal: true
	// Pr(T <= 2*ideal) = 100%
}

package events

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the Server-Sent Events wire encoding of a
// journal (RFC-less but standardized in WHATWG HTML "server-sent
// events"). Each event is one frame:
//
//	id: <seq>
//	event: <type>
//	data: <event JSON>
//	<blank line>
//
// The id line carries the journal sequence number, so a client (or
// curl -N | a reconnect loop) that reconnects with the standard
// Last-Event-ID request header resumes exactly where it dropped: the
// server replays the journal past that sequence number and then goes
// live. The data payload is the same Event JSON the non-streaming
// endpoint returns, so the two views of a journal are interchangeable.

// WriteSSE writes one event as an SSE frame. Event JSON never contains
// a raw newline (encoding/json escapes them), so the frame is always a
// single data line.
func WriteSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

// ParseLastEventID parses a Last-Event-ID header (or ?after= query)
// value into a sequence number. Empty or malformed values mean 0 —
// stream from the beginning — because a resuming client with a
// corrupt cursor is better served the full journal than an error.
func ParseLastEventID(s string) int64 {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

package events

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"cdsf/internal/metrics"
)

// fixedClock steps one second per call from a fixed origin.
func fixedClock() func() time.Time {
	t := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Second)
		return t
	}
}

func TestJournalSequencesAndSnapshot(t *testing.T) {
	l := NewLog(Options{Clock: fixedClock()})
	j := l.Journal("job-1")
	if got := j.Record(Event{Type: TypeAccepted}); got != 1 {
		t.Errorf("first seq %d, want 1", got)
	}
	j.Record(Event{Type: TypeQueued})
	j.Record(Event{Type: TypeStarted})
	j.Record(Event{Type: TypeDone})

	snap := j.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(snap))
	}
	wantTypes := []Type{TypeAccepted, TypeQueued, TypeStarted, TypeDone}
	for i, ev := range snap {
		if ev.Seq != int64(i+1) || ev.Type != wantTypes[i] || ev.Job != "job-1" {
			t.Errorf("event %d = %+v, want seq %d type %s", i, ev, i+1, wantTypes[i])
		}
		if ev.Time.IsZero() {
			t.Errorf("event %d has no timestamp", i)
		}
	}
	if got := j.Since(2); len(got) != 2 || got[0].Seq != 3 {
		t.Errorf("Since(2) = %+v, want seqs 3,4", got)
	}
	if j.FirstSeq() != 1 || j.LastSeq() != 4 {
		t.Errorf("bounds %d..%d, want 1..4", j.FirstSeq(), j.LastSeq())
	}
	// Same journal handle for the same job; distinct jobs are distinct.
	if l.Journal("job-1") != j {
		t.Error("Journal not idempotent per job")
	}
	if l.Lookup("job-2") != nil {
		t.Error("Lookup created a journal")
	}
	if l.Journal("job-2") == j {
		t.Error("distinct jobs share a journal")
	}
}

func TestJournalBoundTrimsOldest(t *testing.T) {
	reg := metrics.NewRegistry()
	l := NewLog(Options{JournalBound: 4, Metrics: reg})
	j := l.Journal("job-1")
	for i := 0; i < 10; i++ {
		j.Record(Event{Type: TypeProgress})
	}
	snap := j.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d events with bound 4", len(snap))
	}
	if snap[0].Seq != 7 || snap[3].Seq != 10 {
		t.Errorf("retained seqs %d..%d, want 7..10", snap[0].Seq, snap[3].Seq)
	}
	if j.FirstSeq() != 7 {
		t.Errorf("FirstSeq %d, want 7", j.FirstSeq())
	}
	if got := reg.Counter("events.trimmed").Value(); got != 6 {
		t.Errorf("events.trimmed = %d, want 6", got)
	}
	// A resume from before the trim point replays only what is
	// retained: the caller sees the gap in Seq.
	if got := j.Since(1); len(got) != 4 || got[0].Seq != 7 {
		t.Errorf("Since(1) across trimmed gap = %+v, want seqs 7..10", got)
	}
}

func TestSubscribeReplayThenLive(t *testing.T) {
	l := NewLog(Options{})
	j := l.Journal("job-1")
	j.Record(Event{Type: TypeAccepted})
	j.Record(Event{Type: TypeQueued})

	replay, sub := j.Subscribe(1)
	defer j.Unsubscribe(sub)
	if len(replay) != 1 || replay[0].Seq != 2 {
		t.Fatalf("replay after seq 1 = %+v", replay)
	}
	j.Record(Event{Type: TypeStarted})
	select {
	case ev := <-sub.C:
		if ev.Seq != 3 || ev.Type != TypeStarted {
			t.Errorf("live event %+v, want seq 3 started", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("live event never arrived")
	}
	j.Record(Event{Type: TypeDone})
	j.Close()
	// The buffered terminal event drains, then the channel closes.
	if ev, ok := <-sub.C; !ok || ev.Type != TypeDone {
		t.Errorf("terminal event %+v ok=%v", ev, ok)
	}
	if _, ok := <-sub.C; ok {
		t.Error("channel still open after Close")
	}
	// Subscribing to a closed journal replays and comes pre-closed.
	replay, sub2 := j.Subscribe(0)
	if len(replay) != 4 {
		t.Errorf("closed-journal replay has %d events, want 4", len(replay))
	}
	if _, ok := <-sub2.C; ok {
		t.Error("closed-journal subscription delivered a live event")
	}
	if j.Record(Event{Type: TypeProgress}) != 0 {
		t.Error("Record after Close assigned a sequence")
	}
	if !j.Closed() {
		t.Error("Closed() false after Close")
	}
	j.Close() // idempotent
}

// TestSlowSubscriberDrops is the stalled-reader satellite: a
// subscriber that never drains its buffer loses events (counted in
// events.dropped and Subscription.Dropped) while Record never blocks,
// and the journal itself retains everything for backfill.
func TestSlowSubscriberDrops(t *testing.T) {
	reg := metrics.NewRegistry()
	l := NewLog(Options{SubscriberBuffer: 2, Metrics: reg})
	j := l.Journal("job-1")
	_, sub := j.Subscribe(0)
	defer j.Unsubscribe(sub)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			j.Record(Event{Type: TypeProgress})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked on a stalled subscriber")
	}
	if got := sub.Dropped(); got != 8 {
		t.Errorf("Subscription.Dropped = %d, want 8 (buffer 2, 10 events)", got)
	}
	if got := reg.Counter("events.dropped").Value(); got != 8 {
		t.Errorf("events.dropped counter = %d, want 8", got)
	}
	// The journal is intact: the reader fills its gap from Since.
	first := <-sub.C
	second := <-sub.C
	if first.Seq != 1 || second.Seq != 2 {
		t.Fatalf("buffered seqs %d,%d, want 1,2", first.Seq, second.Seq)
	}
	if backfill := j.Since(second.Seq); len(backfill) != 8 || backfill[0].Seq != 3 {
		t.Errorf("backfill after drop = %d events from seq %d, want 8 from 3",
			len(backfill), backfill[0].Seq)
	}
	if got := reg.Counter("events.recorded").Value(); got != 10 {
		t.Errorf("events.recorded = %d, want 10", got)
	}
}

func TestRingAcrossJobs(t *testing.T) {
	l := NewLog(Options{RingBound: 4})
	l.Journal("a").Record(Event{Type: TypeAccepted})
	l.Journal("b").Record(Event{Type: TypeAccepted})
	ring := l.Ring()
	if len(ring) != 2 || ring[0].Job != "a" || ring[1].Job != "b" {
		t.Fatalf("partial ring %+v", ring)
	}
	for i := 0; i < 5; i++ {
		l.Journal("c").Record(Event{Type: TypeProgress})
	}
	ring = l.Ring()
	if len(ring) != 4 {
		t.Fatalf("full ring has %d events, want 4", len(ring))
	}
	// Oldest-first: the two oldest surviving events are c's 2nd and 3rd.
	if ring[0].Job != "c" || ring[0].Seq != 2 || ring[3].Seq != 5 {
		t.Errorf("ring order wrong: %+v", ring)
	}
}

func TestNilLogAndJournalAreNoOps(t *testing.T) {
	var l *Log
	j := l.Journal("x")
	if j != nil {
		t.Fatal("nil log produced a journal")
	}
	if l.Lookup("x") != nil || l.Ring() != nil {
		t.Error("nil log lookup/ring not nil")
	}
	if j.Record(Event{Type: TypeDone}) != 0 || j.Snapshot() != nil || j.Since(0) != nil {
		t.Error("nil journal not a no-op")
	}
	if j.FirstSeq() != 0 || j.LastSeq() != 0 || j.Closed() {
		t.Error("nil journal reports state")
	}
	replay, sub := j.Subscribe(0)
	if replay != nil {
		t.Error("nil journal replayed events")
	}
	if _, ok := <-sub.C; ok {
		t.Error("nil journal subscription not pre-closed")
	}
	j.Unsubscribe(sub)
	j.Close()
}

func TestWriteSSEFrame(t *testing.T) {
	l := NewLog(Options{Clock: fixedClock()})
	j := l.Journal("job-9")
	j.Record(Event{Type: TypeStarted, Detail: "kind=solve"})
	ev := j.Snapshot()[0]

	var buf bytes.Buffer
	if err := WriteSSE(&buf, ev); err != nil {
		t.Fatal(err)
	}
	frame := buf.String()
	if !strings.HasPrefix(frame, "id: 1\nevent: started\ndata: ") || !strings.HasSuffix(frame, "\n\n") {
		t.Fatalf("malformed frame:\n%q", frame)
	}
	dataLine := strings.TrimSuffix(strings.SplitN(frame, "data: ", 2)[1], "\n\n")
	var round Event
	if err := json.Unmarshal([]byte(dataLine), &round); err != nil {
		t.Fatalf("data payload not JSON: %v", err)
	}
	if round != ev {
		t.Errorf("round-tripped event %+v != %+v", round, ev)
	}
}

func TestParseLastEventID(t *testing.T) {
	for in, want := range map[string]int64{
		"": 0, "7": 7, " 12 ": 12, "-3": 0, "junk": 0, "9999999999": 9999999999,
	} {
		if got := ParseLastEventID(in); got != want {
			t.Errorf("ParseLastEventID(%q) = %d, want %d", in, got, want)
		}
	}
}

func TestTerminalTypes(t *testing.T) {
	for _, tt := range []Type{TypeDone, TypeFailed, TypeCancelled, TypeDrained} {
		if !tt.Terminal() {
			t.Errorf("%s not terminal", tt)
		}
	}
	for _, tt := range []Type{TypeAccepted, TypeQueued, TypeStarted, TypeProgress, TypeCacheResultHit, TypeCacheWarm} {
		if tt.Terminal() {
			t.Errorf("%s terminal", tt)
		}
	}
}

func TestConcurrentRecordAndSubscribe(t *testing.T) {
	l := NewLog(Options{SubscriberBuffer: 4})
	j := l.Journal("job-1")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j.Record(Event{Type: TypeProgress})
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			replay, sub := j.Subscribe(0)
			defer j.Unsubscribe(sub)
			_ = replay
			for i := 0; i < 20; i++ {
				select {
				case <-sub.C:
				case <-time.After(10 * time.Millisecond):
				}
			}
		}()
	}
	wg.Wait()
	if got := j.LastSeq(); got != 400 {
		t.Errorf("LastSeq %d, want 400", got)
	}
	// Seqs in the journal are strictly ascending with no duplicates.
	snap := j.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("non-monotonic seqs at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}

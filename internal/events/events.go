// Package events is the job-event journal of the cdsfd scheduling
// service: a per-job append-only log of typed lifecycle events with
// monotonic sequence numbers, a bounded cross-job ring (the "flight
// recorder"), and fan-out subscriptions feeding the SSE endpoints.
//
// The shape mirrors internal/metrics and internal/tracing: a Log is
// the top-level collector, a nil *Log (or nil *Journal) is a no-op on
// every method, event recording never touches the engines' rng streams
// or result documents, and the whole package is standard library only
// — so seeded results are bit-identical with events on or off.
//
// Each job owns one Journal. Sequence numbers start at 1 and are
// monotonic per job; the journal is append-only but bounded — when it
// outgrows JournalBound the oldest events are trimmed (FirstSeq moves
// forward), which readers observe as a gap they cannot replay. The
// SSE layer resumes a dropped client from Last-Event-ID by replaying
// the journal tail past that sequence number and then going live.
//
// Subscriptions are drop-not-block: a Record never waits on a slow
// subscriber. When a subscriber's buffer is full the event is counted
// (events.dropped and Subscription.Dropped) and skipped for that
// subscriber; the subscriber detects the sequence gap and re-reads the
// journal to fill it. This keeps the event path non-blocking no matter
// how stalled a client connection is.
package events

import (
	"sync"
	"time"

	"cdsf/internal/metrics"
)

// Type names a job lifecycle event.
type Type string

const (
	// TypeAccepted: the request was admitted and a job id assigned.
	TypeAccepted Type = "accepted"
	// TypeQueued: the job entered the bounded queue.
	TypeQueued Type = "queued"
	// TypeStarted: an executor picked the job up.
	TypeStarted Type = "started"
	// TypeAssigned: the coordinator leased the job to a worker peer
	// (Detail carries the worker name; an empty name releases the
	// lease back to the local pool).
	TypeAssigned Type = "assigned"
	// TypeProgress: a sampled snapshot of the job's progress board.
	TypeProgress Type = "progress"
	// TypeCacheResultHit: the job was answered from the result tier of
	// the solve cache without running.
	TypeCacheResultHit Type = "cache_result_hit"
	// TypeCacheWarm: the job finished having reused warm cached
	// evaluation-table distributions (warm_hits/warm_misses carry the
	// counts).
	TypeCacheWarm Type = "cache_warm"
	// TypeCancelled: cancelled by DELETE or a context deadline.
	TypeCancelled Type = "cancelled"
	// TypeDrained: cancelled by server drain (shutdown).
	TypeDrained Type = "drained"
	// TypeDone: finished successfully.
	TypeDone Type = "done"
	// TypeFailed: the engine returned a non-cancellation error.
	TypeFailed Type = "failed"
)

// Terminal reports whether the event type ends a job's journal:
// after a terminal event the journal is closed and followers finish.
func (t Type) Terminal() bool {
	switch t {
	case TypeDone, TypeFailed, TypeCancelled, TypeDrained:
		return true
	}
	return false
}

// Counts is one progress dimension's done/planned pair.
type Counts struct {
	Done    int64 `json:"done"`
	Planned int64 `json:"planned"`
}

// ProgressCounts is a sampled snapshot of a job's progress board.
type ProgressCounts struct {
	Scenarios    Counts `json:"scenarios"`
	Cases        Counts `json:"cases"`
	Replications Counts `json:"replications"`
}

// Event is one journal entry. Seq is monotonic per job starting at 1;
// Time is the wall clock at Record (the Log's injectable clock, so
// tests pin it). Detail carries the human fragment (error message,
// cache key); Progress and the warm counters are set only on their
// event types.
type Event struct {
	Seq        int64           `json:"seq"`
	Time       time.Time       `json:"time"`
	Job        string          `json:"job"`
	Type       Type            `json:"type"`
	Detail     string          `json:"detail,omitempty"`
	Progress   *ProgressCounts `json:"progress,omitempty"`
	WarmHits   int64           `json:"warm_hits,omitempty"`
	WarmMisses int64           `json:"warm_misses,omitempty"`
}

// Options configures a Log.
type Options struct {
	// JournalBound caps a single job's journal; beyond it the oldest
	// events are trimmed and FirstSeq moves forward. Non-positive means
	// 4096.
	JournalBound int
	// RingBound caps the cross-job flight-recorder ring. Non-positive
	// means 1024.
	RingBound int
	// SubscriberBuffer is each subscription's channel capacity; a
	// subscriber further behind than this starts dropping (and
	// backfills from the journal). Non-positive means 64.
	SubscriberBuffer int
	// Clock supplies event timestamps; nil means time.Now. UTC is
	// applied by Record.
	Clock func() time.Time
	// Metrics receives the events.* counters (recorded, trimmed,
	// dropped); nil disables them.
	Metrics *metrics.Registry
}

// Log is the top-level event collector: it owns one Journal per job
// and the cross-job ring. A nil *Log is a no-op everywhere — Journal
// returns nil, and a nil *Journal no-ops every method.
type Log struct {
	opts Options

	recorded *metrics.Counter
	trimmed  *metrics.Counter
	dropped  *metrics.Counter

	mu       sync.Mutex
	journals map[string]*Journal
	ring     []Event // filled circularly once len == RingBound
	ringNext int
	ringFull bool
}

// NewLog returns an empty event log.
func NewLog(opts Options) *Log {
	if opts.JournalBound <= 0 {
		opts.JournalBound = 4096
	}
	if opts.RingBound <= 0 {
		opts.RingBound = 1024
	}
	if opts.SubscriberBuffer <= 0 {
		opts.SubscriberBuffer = 64
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	return &Log{
		opts:     opts,
		recorded: opts.Metrics.Counter("events.recorded"),
		trimmed:  opts.Metrics.Counter("events.trimmed"),
		dropped:  opts.Metrics.Counter("events.dropped"),
		journals: map[string]*Journal{},
	}
}

// Journal returns the named job's journal, creating it on first use.
// A nil log returns nil (the no-op journal).
func (l *Log) Journal(job string) *Journal {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	j, ok := l.journals[job]
	if !ok {
		j = &Journal{log: l, job: job, firstSeq: 1, subs: map[*Subscription]struct{}{}}
		l.journals[job] = j
	}
	return j
}

// Lookup returns the named job's journal without creating it, or nil.
func (l *Log) Lookup(job string) *Journal {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.journals[job]
}

// Ring returns the flight recorder: the most recent events across all
// jobs, oldest first, bounded by RingBound. A nil log returns nil.
func (l *Log) Ring() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.ringFull {
		return append([]Event(nil), l.ring[:l.ringNext]...)
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.ringNext:]...)
	out = append(out, l.ring[:l.ringNext]...)
	return out
}

// pushRing folds one event into the cross-job ring.
func (l *Log) pushRing(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ring == nil {
		l.ring = make([]Event, l.opts.RingBound)
	}
	l.ring[l.ringNext] = ev
	l.ringNext++
	if l.ringNext == len(l.ring) {
		l.ringNext = 0
		l.ringFull = true
	}
}

// Journal is one job's append-only event sequence plus its live
// subscribers. All methods are safe for concurrent use; a nil
// *Journal is a no-op.
type Journal struct {
	log *Log
	job string

	mu       sync.Mutex
	firstSeq int64 // seq of events[0]; > 1 once trimmed
	nextSeq  int64 // seqs handed out so far (LastSeq = firstSeq-1+len at rest)
	events   []Event
	subs     map[*Subscription]struct{}
	closed   bool
}

// Record appends one event, filling Seq, Time, and Job, and fans it
// out to subscribers (dropping, never blocking, on a full buffer). It
// returns the assigned sequence number (0 on a nil journal or after
// Close).
func (j *Journal) Record(ev Event) int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return 0
	}
	j.nextSeq++
	ev.Seq = j.nextSeq
	ev.Time = j.log.opts.Clock().UTC()
	ev.Job = j.job
	j.events = append(j.events, ev)
	if over := len(j.events) - j.log.opts.JournalBound; over > 0 {
		j.events = append(j.events[:0], j.events[over:]...)
		j.firstSeq += int64(over)
		j.log.trimmed.Add(int64(over))
	}
	for s := range j.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			j.log.dropped.Inc()
		}
	}
	j.mu.Unlock()

	j.log.recorded.Inc()
	j.log.pushRing(ev)
	return ev.Seq
}

// Close marks the journal complete: subscriber channels are closed
// (after any buffered events drain) and later Records are no-ops.
// Callers Record the terminal event first, then Close. Idempotent and
// a no-op on nil.
func (j *Journal) Close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	j.closed = true
	for s := range j.subs {
		close(s.ch)
	}
	j.subs = map[*Subscription]struct{}{}
}

// Closed reports whether Close has been called (false on nil).
func (j *Journal) Closed() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.closed
}

// FirstSeq returns the oldest retained sequence number (1 until the
// journal is trimmed; 0 on nil).
func (j *Journal) FirstSeq() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.firstSeq
}

// LastSeq returns the newest sequence number recorded so far (0 when
// empty or nil).
func (j *Journal) LastSeq() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq
}

// Snapshot returns a copy of every retained event, oldest first (nil
// on a nil journal).
func (j *Journal) Snapshot() []Event { return j.Since(0) }

// Since returns a copy of the retained events with Seq > after, oldest
// first. Events trimmed from the bounded journal cannot be replayed:
// asking for a sequence older than FirstSeq returns everything
// retained, and the caller observes the gap in the Seq numbering.
func (j *Journal) Since(after int64) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	start := 0
	if after >= j.firstSeq {
		start = int(after - j.firstSeq + 1)
	}
	if start >= len(j.events) {
		return nil
	}
	return append([]Event(nil), j.events[start:]...)
}

// Subscription is one follower's live feed. Receive from C; events a
// stalled receiver missed are counted in Dropped, and the channel is
// closed when the journal closes.
type Subscription struct {
	// C delivers events recorded after the subscription was taken. It
	// is closed when the journal closes.
	C <-chan Event

	ch      chan Event
	dropped metrics.Counter
}

// Dropped returns how many events were dropped for this subscriber
// because its buffer was full (each shows up as a Seq gap on C, which
// the reader fills from Since).
func (s *Subscription) Dropped() int64 { return s.dropped.Value() }

// Subscribe atomically snapshots the events with Seq > after and
// registers a live subscription for everything recorded afterwards, so
// no event is lost or duplicated between replay and live delivery. On
// a closed (or nil) journal the returned subscription's channel is
// already closed: the caller replays and finishes. Callers must
// Unsubscribe when done.
func (j *Journal) Subscribe(after int64) ([]Event, *Subscription) {
	s := &Subscription{}
	if j == nil {
		s.ch = make(chan Event)
		close(s.ch)
		s.C = s.ch
		return nil, s
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	start := 0
	if after >= j.firstSeq {
		start = int(after - j.firstSeq + 1)
	}
	var replay []Event
	if start < len(j.events) {
		replay = append([]Event(nil), j.events[start:]...)
	}
	s.ch = make(chan Event, j.log.opts.SubscriberBuffer)
	s.C = s.ch
	if j.closed {
		close(s.ch)
	} else {
		j.subs[s] = struct{}{}
	}
	return replay, s
}

// Unsubscribe removes a subscription taken with Subscribe. Safe to
// call after the journal closed, and a no-op on a nil journal.
func (j *Journal) Unsubscribe(s *Subscription) {
	if j == nil || s == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, s)
}

package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sources diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("distinct seeds produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("seed 0 produced only %d distinct values of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn bucket %d count %d far from expected %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("ExpFloat64 = %v negative", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(29)
	child := parent.Split()
	// The child stream should not reproduce the parent's next outputs.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split child duplicated %d of 100 parent outputs", same)
	}
}

// TestQuickIntnInRange property-checks Intn stays within bounds for
// arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickFloat64InRange property-checks Float64's interval.
func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestJumpDisjointStreams(t *testing.T) {
	a := New(77)
	b := New(77)
	b.Jump()
	// The jumped stream must diverge from the base stream immediately
	// and produce no collisions over a window.
	seen := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		seen[a.Uint64()] = true
	}
	collisions := 0
	for i := 0; i < 2000; i++ {
		if seen[b.Uint64()] {
			collisions++
		}
	}
	if collisions > 0 {
		t.Errorf("jumped stream collided %d times with the base stream", collisions)
	}
}

func TestJumpDeterministic(t *testing.T) {
	a, b := New(5), New(5)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("jump not deterministic")
		}
	}
}

func TestJumpStatisticalQuality(t *testing.T) {
	r := New(1)
	r.Jump()
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Errorf("post-jump mean = %v", mean)
	}
}
